package chiplet

import (
	"math"
	"testing"

	"hcapp/internal/core"
	"hcapp/internal/power"
	"hcapp/internal/sim"
	"hcapp/internal/workload"
)

func testModel() power.Model {
	return power.Model{
		DVFS: power.DVFS{
			FMax: 2e9, FMin: 0.8e9,
			VNom: 1.10, VMin: 0.60, VT: 0.55, Alpha: 2.0,
		},
		CEff: 4.6e-9, LeakNom: 0.9, LeakExp: 1.5, IdleAct: 0.03,
	}
}

func steadyTrace(act float64) *workload.Trace {
	return workload.ConstantTrace("steady", 2e9, 100*sim.Microsecond, 1.5, 0.2, act, 0.1)
}

func testChiplet(t *testing.T, units int, totalWork float64, withLocal bool) *Chiplet {
	t.Helper()
	specs := make([]UnitSpec, units)
	for i := range specs {
		var lc core.Local
		if withLocal {
			lc = core.MustStaticIPC(2.5, 0.6, 0.3, 0.05, core.RatioRange{Min: 0.85, Max: 1.0})
		}
		specs[i] = UnitSpec{Trace: steadyTrace(0.6), Local: lc}
	}
	c, err := New(Config{
		Name: "test", Units: specs, Model: testModel(),
		LocalEpoch: 5 * sim.Microsecond,
		UncoreLeak: 1.0, UncoreDyn: 1.0,
		TotalWork: totalWork,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	m := testModel()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no units", Config{Name: "x", Model: m, LocalEpoch: 1000}},
		{"bad model", Config{Name: "x", Units: []UnitSpec{{Trace: steadyTrace(0.5)}}, LocalEpoch: 1000}},
		{"zero epoch", Config{Name: "x", Units: []UnitSpec{{Trace: steadyTrace(0.5)}}, Model: m}},
		{"nil trace", Config{Name: "x", Units: []UnitSpec{{}}, Model: m, LocalEpoch: 1000}},
		{"negative work", Config{Name: "x", Units: []UnitSpec{{Trace: steadyTrace(0.5)}}, Model: m, LocalEpoch: 1000, TotalWork: -1}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestStepDrawsPower(t *testing.T) {
	c := testChiplet(t, 4, 0, false)
	res := c.Step(100, 100, 0.95)
	if res.Power <= 0 {
		t.Fatalf("power = %g", res.Power)
	}
	if res.Work <= 0 {
		t.Fatalf("work = %g", res.Work)
	}
	if c.LastPower() != res.Power {
		t.Fatal("LastPower mismatch")
	}
}

func TestPowerScalesWithVoltage(t *testing.T) {
	lo := testChiplet(t, 4, 0, false).Step(100, 100, 0.80).Power
	hi := testChiplet(t, 4, 0, false).Step(100, 100, 1.10).Power
	if hi <= lo*1.5 {
		t.Fatalf("power barely scales with voltage: %g -> %g", lo, hi)
	}
}

func TestWorkAccounting(t *testing.T) {
	// Size the pool to finish in ~1 ms at 0.95 V, then verify Done,
	// Progress and CompletionTime line up.
	c := testChiplet(t, 2, 0, false)
	work := c.AvgIPSAt(0.95) * 1e-3
	c.SetTotalWork(work)
	if c.TotalWork() != work {
		t.Fatal("SetTotalWork not applied")
	}
	var now sim.Time
	for !c.Done() && now < 10*sim.Millisecond {
		now += 100
		c.Step(now, 100, 0.95)
	}
	if !c.Done() {
		t.Fatal("never completed")
	}
	if got := c.CompletionTime(); got <= 0 || got > 2*sim.Millisecond {
		t.Fatalf("completion at %s, want ≈1ms", sim.FormatTime(got))
	}
	if c.Progress() != 1 {
		t.Fatalf("progress = %g", c.Progress())
	}
}

func TestProgressMonotone(t *testing.T) {
	c := testChiplet(t, 2, 0, false)
	c.SetTotalWork(c.AvgIPSAt(0.95) * 2e-3)
	prev := 0.0
	for now := sim.Time(100); now <= sim.Millisecond; now += 100 {
		c.Step(now, 100, 0.95)
		p := c.Progress()
		if p < prev {
			t.Fatalf("progress went backwards at %s", sim.FormatTime(now))
		}
		prev = p
	}
	if prev <= 0 || prev >= 1 {
		t.Fatalf("mid-run progress = %g", prev)
	}
}

func TestIdleAfterDone(t *testing.T) {
	c := testChiplet(t, 2, 0, false)
	c.SetTotalWork(1) // finishes on the first step
	c.Step(100, 100, 0.95)
	if !c.Done() {
		t.Fatal("tiny pool not done")
	}
	busy := testChiplet(t, 2, 0, false).Step(100, 100, 0.95).Power
	idle := c.Step(200, 100, 0.95)
	if idle.Work != 0 {
		t.Fatalf("idle chiplet retired work: %g", idle.Work)
	}
	if idle.Power >= busy {
		t.Fatalf("idle power %g not below busy power %g", idle.Power, busy)
	}
	if idle.Power <= 0 {
		t.Fatal("idle chiplet must still leak")
	}
}

func TestZeroWorkRunsForever(t *testing.T) {
	c := testChiplet(t, 1, 0, false)
	for now := sim.Time(100); now <= sim.Millisecond; now += 100 {
		c.Step(now, 100, 0.95)
	}
	if c.Done() {
		t.Fatal("zero-work chiplet reported done")
	}
	if c.Progress() != 0 {
		t.Fatalf("zero-work progress = %g", c.Progress())
	}
	if c.CompletionTime() != -1 {
		t.Fatal("zero-work completion time set")
	}
}

func TestLocalControllerEngages(t *testing.T) {
	// A low-activity, low-IPC workload must drive the local ratio down
	// within a few epochs.
	specs := []UnitSpec{{
		Trace: workload.ConstantTrace("idleish", 2e9, 100*sim.Microsecond, 0.3, 0.6, 0.1, 0.05),
		Local: core.MustStaticIPC(2.5, 0.6, 0.3, 0.05, core.RatioRange{Min: 0.85, Max: 1.0}),
	}}
	c, err := New(Config{
		Name: "x", Units: specs, Model: testModel(),
		LocalEpoch: 5 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for now := sim.Time(100); now <= 100*sim.Microsecond; now += 100 {
		c.Step(now, 100, 0.95)
	}
	if got := c.UnitRatio(0); got != 0.85 {
		t.Fatalf("low-IPC unit ratio = %g, want floor 0.85", got)
	}
	if c.UnitIPC(0) <= 0 {
		t.Fatal("unit IPC not measured")
	}
	if got := c.MeanRatio(); got != 0.85 {
		t.Fatalf("mean ratio = %g", got)
	}
}

func TestNilLocalKeepsUnityRatio(t *testing.T) {
	c := testChiplet(t, 2, 0, false)
	for now := sim.Time(100); now <= 50*sim.Microsecond; now += 100 {
		c.Step(now, 100, 0.95)
	}
	if got := c.MeanRatio(); got != 1.0 {
		t.Fatalf("ratio without local controller = %g", got)
	}
}

func TestResetReproducesRun(t *testing.T) {
	c := testChiplet(t, 3, 0, true)
	c.SetTotalWork(c.AvgIPSAt(0.95) * 1e-3)
	run := func() (float64, sim.Time) {
		var total float64
		var now sim.Time
		for now < sim.Millisecond {
			now += 100
			total += c.Step(now, 100, 0.95).Power
		}
		return total, c.CompletionTime()
	}
	p1, t1 := run()
	c.Reset()
	if c.Done() || c.Progress() != 0 {
		t.Fatal("reset did not clear work state")
	}
	p2, t2 := run()
	if math.Abs(p1-p2) > 1e-6 || t1 != t2 {
		t.Fatalf("reset run diverged: %g/%d vs %g/%d", p1, t1, p2, t2)
	}
}

func TestAvgIPSAtScalesWithUnits(t *testing.T) {
	one := testChiplet(t, 1, 0, false).AvgIPSAt(0.95)
	four := testChiplet(t, 4, 0, false).AvgIPSAt(0.95)
	if math.Abs(four/one-4) > 1e-9 {
		t.Fatalf("AvgIPSAt not additive: %g vs 4×%g", four, one)
	}
}

func TestUncoreContribution(t *testing.T) {
	specs := []UnitSpec{{Trace: steadyTrace(0.6)}}
	base, err := New(Config{Name: "a", Units: specs, Model: testModel(), LocalEpoch: 1000})
	if err != nil {
		t.Fatal(err)
	}
	specs2 := []UnitSpec{{Trace: steadyTrace(0.6)}}
	with, err := New(Config{Name: "b", Units: specs2, Model: testModel(), LocalEpoch: 1000, UncoreLeak: 2, UncoreDyn: 1})
	if err != nil {
		t.Fatal(err)
	}
	p0 := base.Step(100, 100, 0.95).Power
	p1 := with.Step(100, 100, 0.95).Power
	if p1 <= p0 {
		t.Fatal("uncore power missing")
	}
}

func TestConstantComponent(t *testing.T) {
	c := NewConstant("mem", 10)
	if c.Name() != "mem" {
		t.Fatalf("name %q", c.Name())
	}
	res := c.Step(100, 100, 0.5)
	if res.Power != 10 || res.Work != 0 {
		t.Fatalf("constant step = %+v", res)
	}
	if !c.Done() || c.Progress() != 1 {
		t.Fatal("constant must always be done")
	}
	c.Reset() // no-op, must not panic
}

func TestChipletName(t *testing.T) {
	c := testChiplet(t, 1, 0, false)
	if c.Name() != "test" {
		t.Fatalf("name %q", c.Name())
	}
	if c.Units() != 1 {
		t.Fatalf("units %d", c.Units())
	}
}
