// Package chiplet implements the generic multi-unit chiplet simulator
// underlying both the CPU model (internal/cpusim) and the GPU model
// (internal/gpusim).
//
// A chiplet is a set of execution units (cores or SMs), each running its
// own workload trace and carrying its own HCAPP local controller, plus a
// shared uncore. Every engine step each unit derives its local voltage
// from the domain voltage and its local ratio, clocks at the frequency
// the DVFS envelope permits, retires work, and draws power; every local
// epoch the unit's measured IPC feeds its local controller, which answers
// with a new ratio. This is the simulation contract the paper's Sniper
// and GPGPU-Sim components fulfilled.
package chiplet

import (
	"fmt"

	"hcapp/internal/core"
	"hcapp/internal/power"
	"hcapp/internal/sim"
	"hcapp/internal/thermal"
	"hcapp/internal/workload"
)

// UnitSpec describes one execution unit at construction time.
type UnitSpec struct {
	Trace      *workload.Trace
	StartPhase int
	Local      core.Local
}

// Config assembles a chiplet.
type Config struct {
	Name  string
	Units []UnitSpec
	// Model is the per-unit power model (shared; units are homogeneous
	// within a chiplet).
	Model power.Model
	// LocalEpoch is the local-controller evaluation period.
	LocalEpoch sim.Time
	// UncoreLeak / UncoreDyn model the shared uncore: leakage plus a
	// dynamic term proportional to mean unit activity, both scaled by
	// (V/VNom)^3.
	UncoreLeak, UncoreDyn float64
	// TotalWork is the chiplet's assigned work (summed over units);
	// the chiplet is Done when this much work has retired. Zero means
	// "run forever" (useful in tuning harnesses).
	TotalWork float64
	// Thermal, when non-nil, attaches a junction thermal node fed by
	// the chiplet's total power. When the node trips, every unit's
	// local ratio is overridden down to ThermalThrottleRatio until the
	// junction cools past the hysteresis band — the §3.3 protective
	// behaviour.
	Thermal *thermal.Config
	// ThermalThrottleRatio is the protective ratio applied while
	// tripped; zero defaults to 0.75.
	ThermalThrottleRatio float64
	// VoltageMargin selects the §3.5 timing-safety mechanism. Zero
	// models adaptive clocking: the clock follows the delivered voltage
	// exactly (Keller-style). A positive value models a static
	// guardband instead: the clock is generated as if the supply were
	// VoltageMargin lower, trading performance for immunity to voltage
	// transients.
	VoltageMargin float64
}

type unit struct {
	spec      UnitSpec
	cursor    *workload.Cursor
	ratio     float64
	accInstr  float64
	accCycles float64
	accAct    float64
	accSteps  int64
	nextEpoch sim.Time
	lastIPC   float64
	lastAct   float64
	// Per-step meter samples (activity and power drawn on the most
	// recent step), recorded only when the unit meter is enabled — the
	// energy ledger's ground-truth feed.
	stepAct   float64
	stepPower float64
}

// Chiplet is a multi-unit component implementing sim.Component.
type Chiplet struct {
	cfg       Config
	units     []*unit
	doneWork  float64
	doneAt    sim.Time // completion timestamp; -1 while running
	lastPower float64
	therm     *thermal.Node // nil when unsensed
	meterOn   bool
}

// New builds a chiplet. Local controllers may be nil (no level-3
// control, ratio pinned at 1.0 — the paper's fixed-voltage baseline has
// "no local controllers").
func New(cfg Config) (*Chiplet, error) {
	if len(cfg.Units) == 0 {
		return nil, fmt.Errorf("chiplet: %q has no units", cfg.Name)
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, fmt.Errorf("chiplet: %q model: %w", cfg.Name, err)
	}
	if cfg.LocalEpoch <= 0 {
		return nil, fmt.Errorf("chiplet: %q non-positive local epoch", cfg.Name)
	}
	if cfg.TotalWork < 0 {
		return nil, fmt.Errorf("chiplet: %q negative total work", cfg.Name)
	}
	if cfg.VoltageMargin < 0 {
		return nil, fmt.Errorf("chiplet: %q negative voltage margin", cfg.Name)
	}
	if cfg.ThermalThrottleRatio == 0 {
		cfg.ThermalThrottleRatio = 0.75
	}
	if cfg.ThermalThrottleRatio < 0 || cfg.ThermalThrottleRatio > 1 {
		return nil, fmt.Errorf("chiplet: %q throttle ratio %g outside (0,1]", cfg.Name, cfg.ThermalThrottleRatio)
	}
	c := &Chiplet{cfg: cfg, doneAt: -1}
	if cfg.Thermal != nil {
		node, err := thermal.NewNode(*cfg.Thermal)
		if err != nil {
			return nil, fmt.Errorf("chiplet: %q thermal: %w", cfg.Name, err)
		}
		c.therm = node
	}
	for i, us := range cfg.Units {
		if us.Trace == nil {
			return nil, fmt.Errorf("chiplet: %q unit %d has no trace", cfg.Name, i)
		}
		if err := us.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("chiplet: %q unit %d: %w", cfg.Name, i, err)
		}
		c.units = append(c.units, &unit{
			spec:   us,
			cursor: workload.NewCursor(us.Trace, us.StartPhase),
			ratio:  ratioOf(us.Local),
		})
	}
	return c, nil
}

func ratioOf(l core.Local) float64 {
	if l == nil {
		return 1.0
	}
	return l.Ratio()
}

// Name implements sim.Component.
func (c *Chiplet) Name() string { return c.cfg.Name }

// Done implements sim.Component.
func (c *Chiplet) Done() bool { return c.cfg.TotalWork > 0 && c.doneWork >= c.cfg.TotalWork }

// Progress implements sim.Component.
func (c *Chiplet) Progress() float64 {
	if c.cfg.TotalWork <= 0 {
		return 0
	}
	p := c.doneWork / c.cfg.TotalWork
	if p > 1 {
		p = 1
	}
	return p
}

// CompletionTime returns when the chiplet finished, or -1 if it has not.
func (c *Chiplet) CompletionTime() sim.Time { return c.doneAt }

// DoneWork returns the work (instructions) completed so far — the
// throughput measure for continuous-load runs, whose zero work pool
// makes Progress meaningless.
func (c *Chiplet) DoneWork() float64 { return c.doneWork }

// Units returns the unit count.
func (c *Chiplet) Units() int { return len(c.units) }

// UnitRatio returns unit i's current local voltage ratio.
func (c *Chiplet) UnitRatio(i int) float64 { return c.units[i].ratio }

// UnitIPC returns unit i's last measured epoch IPC.
func (c *Chiplet) UnitIPC(i int) float64 { return c.units[i].lastIPC }

// UnitActivity returns unit i's last measured epoch activity.
func (c *Chiplet) UnitActivity(i int) float64 { return c.units[i].lastAct }

// MeanRatio returns the mean local ratio across units.
func (c *Chiplet) MeanRatio() float64 {
	sum := 0.0
	for _, u := range c.units {
		sum += u.ratio
	}
	return sum / float64(len(c.units))
}

// LastPower returns the power drawn on the most recent step.
func (c *Chiplet) LastPower() float64 { return c.lastPower }

// EnableUnitMeter turns on per-unit step sampling (a couple of stores
// per unit per step — off by default so the hot path stays lean). The
// samples feed energy.UnitMeter, which the chiplet then satisfies.
func (c *Chiplet) EnableUnitMeter() { c.meterOn = true }

// ReadUnitSamples copies each unit's most recent step activity and power
// into the destination slices (len >= Units()). Zeros until the meter is
// enabled and a step has run. Unit power excludes the shared uncore,
// which belongs to no single unit — that gap is exactly the attribution
// error the energy subsystem measures.
func (c *Chiplet) ReadUnitSamples(act, watts []float64) {
	for i, u := range c.units {
		act[i] = u.stepAct
		watts[i] = u.stepPower
	}
}

// Step implements sim.Component.
func (c *Chiplet) Step(now sim.Time, dt sim.Time, vdd float64) sim.StepResult {
	dtSec := sim.Seconds(dt)
	finished := c.Done()
	m := &c.cfg.Model

	tripped := c.therm != nil && c.therm.Tripped()
	var tempC float64
	if c.therm != nil {
		tempC = c.therm.Temp()
	}

	totalPower := 0.0
	totalInstr := 0.0
	actSum := 0.0
	for _, u := range c.units {
		ratio := u.ratio
		if tripped && ratio > c.cfg.ThermalThrottleRatio {
			// Thermal protection overrides the local controller
			// ("the local controller would reduce the local voltage at
			// the affected component to prevent failure", §3.3).
			ratio = c.cfg.ThermalThrottleRatio
		}
		vlocal := vdd * ratio
		// Adaptive clocking follows vlocal exactly; a guardbanded
		// design clocks as if the rail were VoltageMargin lower (§3.5).
		f := m.DVFS.Freq(vlocal - c.cfg.VoltageMargin)

		var act float64
		if finished {
			// Work exhausted: the chiplet idles at its floor activity
			// (clock gating), still leaking.
			act = m.IdleAct
		} else {
			out := u.cursor.Step(dt, f, m.DVFS.FMax)
			totalInstr += out.Instr
			act = out.Activity
			// Epoch accumulators feed only the level-3 controller; a
			// unit without one would write them forever and read them
			// never, so skip the stores on the hot path.
			if u.spec.Local != nil {
				u.accInstr += out.Instr
				u.accCycles += f * dtSec
				u.accAct += act
				u.accSteps++
			}
		}

		up := m.Dynamic(vlocal, f, act) + m.Leakage(vlocal)
		totalPower += up
		actSum += act
		if c.meterOn {
			u.stepAct = act
			u.stepPower = up
		}

		// Local epoch: feed measured metrics to the level-3 controller.
		if u.spec.Local != nil && now >= u.nextEpoch {
			ipc := 0.0
			if u.accCycles > 0 {
				ipc = u.accInstr / u.accCycles
			}
			meanAct := 0.0
			if u.accSteps > 0 {
				meanAct = u.accAct / float64(u.accSteps)
			}
			u.lastIPC = ipc
			u.lastAct = meanAct
			u.ratio = u.spec.Local.Epoch(now, core.Metrics{
				IPC:      ipc,
				Activity: meanAct,
				TempC:    tempC,
			}, vdd)
			u.accInstr, u.accCycles = 0, 0
			u.accAct, u.accSteps = 0, 0
			u.nextEpoch = now + c.cfg.LocalEpoch
		}
	}

	// Shared uncore, scaled with the domain voltage.
	vn := vdd / m.DVFS.VNom
	if vn < 0 {
		vn = 0
	}
	meanAct := actSum / float64(len(c.units))
	totalPower += (c.cfg.UncoreLeak + c.cfg.UncoreDyn*meanAct) * vn * vn * vn

	if !finished {
		c.doneWork += totalInstr
		if c.Done() && c.doneAt < 0 {
			c.doneAt = now
		}
	}
	c.lastPower = totalPower
	if c.therm != nil {
		c.therm.Step(dt, totalPower)
	}
	return sim.StepResult{Power: totalPower, Work: totalInstr}
}

// steadyMargin is how many steps the float-derived completion bound
// holds back: the replay subtracts per-step work repeatedly while the
// bound divides once, and the two drift by ulps per step. See the
// matching constant in internal/workload.
const steadyMargin = 8

// SteadyFor implements sim.BulkStepper: the number of future steps at
// constant vdd guaranteed to reproduce the last Step bitwise. It
// recomputes the next step's power operation-for-operation from the
// current state and demands it match lastPower exactly — catching the
// one-step transitions (a unit finishing, an epoch retune) the caller's
// cheaper invariants cannot see — and bounds the stride conservatively
// before every internal event: local-controller epochs, workload phase
// boundaries, and work-pool completion. Chiplets with a thermal node
// never stride (the RC network integrates every step).
func (c *Chiplet) SteadyFor(now sim.Time, dt sim.Time, vdd float64) int64 {
	if c.therm != nil {
		return 0
	}
	m := &c.cfg.Model
	finished := c.Done()
	n := int64(1 << 62)
	totalPower := 0.0
	totalInstr := 0.0
	actSum := 0.0
	for _, u := range c.units {
		if u.spec.Local != nil {
			if k := sim.StepsBefore(now, dt, u.nextEpoch); k < n {
				n = k
			}
			if n <= 0 {
				return 0
			}
		}
		vlocal := vdd * u.ratio
		f := m.DVFS.Freq(vlocal - c.cfg.VoltageMargin)
		var act float64
		if finished {
			act = m.IdleAct
		} else {
			k, instr, a := u.cursor.SteadySteps(dt, f, m.DVFS.FMax)
			if k < n {
				n = k
			}
			if n <= 0 {
				return 0
			}
			totalInstr += instr
			act = a
		}
		up := m.Dynamic(vlocal, f, act) + m.Leakage(vlocal)
		totalPower += up
		actSum += act
	}
	vn := vdd / m.DVFS.VNom
	if vn < 0 {
		vn = 0
	}
	meanAct := actSum / float64(len(c.units))
	totalPower += (c.cfg.UncoreLeak + c.cfg.UncoreDyn*meanAct) * vn * vn * vn
	if totalPower != c.lastPower {
		return 0
	}
	if !finished && c.cfg.TotalWork > 0 && totalInstr > 0 {
		k := int64((c.cfg.TotalWork-c.doneWork)/totalInstr) - steadyMargin
		if k < n {
			n = k
		}
	}
	if n < 0 {
		return 0
	}
	return n
}

// StepN implements sim.BulkStepper: replays n steady steps verified by
// SteadyFor. Every per-step accumulation is repeated n times with the
// identical floating-point operation Step performs, so the state after
// the replay is bitwise what n real steps would have left.
func (c *Chiplet) StepN(now sim.Time, dt sim.Time, vdd float64, n int64) {
	if c.Done() {
		return
	}
	dtSec := sim.Seconds(dt)
	m := &c.cfg.Model
	totalInstr := 0.0
	for _, u := range c.units {
		vlocal := vdd * u.ratio
		f := m.DVFS.Freq(vlocal - c.cfg.VoltageMargin)
		_, instr, act := u.cursor.SteadySteps(dt, f, m.DVFS.FMax)
		u.cursor.AdvanceSteady(n, dt, f, m.DVFS.FMax)
		totalInstr += instr
		if u.spec.Local != nil {
			cycles := f * dtSec
			for i := int64(0); i < n; i++ {
				u.accInstr += instr
				u.accCycles += cycles
				u.accAct += act
			}
			u.accSteps += n
		}
	}
	for i := int64(0); i < n; i++ {
		c.doneWork += totalInstr
	}
}

// Temp returns the junction temperature, or ambient-less 0 when the
// chiplet carries no thermal node.
func (c *Chiplet) Temp() float64 {
	if c.therm == nil {
		return 0
	}
	return c.therm.Temp()
}

// PeakTemp returns the maximum junction temperature seen.
func (c *Chiplet) PeakTemp() float64 {
	if c.therm == nil {
		return 0
	}
	return c.therm.Peak()
}

// ThermalTripped reports whether thermal protection is engaged.
func (c *Chiplet) ThermalTripped() bool {
	return c.therm != nil && c.therm.Tripped()
}

// Reset implements sim.Resetter.
func (c *Chiplet) Reset() {
	c.doneWork = 0
	c.doneAt = -1
	c.lastPower = 0
	if c.therm != nil {
		c.therm.Reset()
	}
	for _, u := range c.units {
		u.cursor.Reset(u.spec.StartPhase)
		if u.spec.Local != nil {
			u.spec.Local.Reset()
		}
		u.ratio = ratioOf(u.spec.Local)
		u.accInstr, u.accCycles = 0, 0
		u.accAct, u.accSteps = 0, 0
		u.nextEpoch = 0
		u.lastIPC = 0
		u.lastAct = 0
		u.stepAct = 0
		u.stepPower = 0
	}
}

// AvgIPSAt returns the chiplet's aggregate steady-state instruction rate
// at a constant local voltage v (ratios at 1.0), used to size TotalWork
// for a target runtime.
func (c *Chiplet) AvgIPSAt(v float64) float64 {
	f := c.cfg.Model.DVFS.Freq(v)
	sum := 0.0
	for _, u := range c.units {
		sum += u.spec.Trace.AvgIPS(f, c.cfg.Model.DVFS.FMax)
	}
	return sum
}

// SetTotalWork assigns the chiplet's work pool (used by the experiment
// harness after sizing against the fixed-voltage baseline).
func (c *Chiplet) SetTotalWork(w float64) { c.cfg.TotalWork = w }

// TotalWork returns the assigned work pool.
func (c *Chiplet) TotalWork() float64 { return c.cfg.TotalWork }

// Constant is a fixed-draw component (the memory/uncore domain): always
// Done, constant power.
type Constant struct {
	name  string
	watts float64
}

// NewConstant returns a constant-power component.
func NewConstant(name string, watts float64) *Constant {
	return &Constant{name: name, watts: watts}
}

// Name implements sim.Component.
func (c *Constant) Name() string { return c.name }

// Step implements sim.Component.
func (c *Constant) Step(_ sim.Time, _ sim.Time, _ float64) sim.StepResult {
	return sim.StepResult{Power: c.watts}
}

// Done implements sim.Component.
func (c *Constant) Done() bool { return true }

// Progress implements sim.Component.
func (c *Constant) Progress() float64 { return 1 }

// Reset implements sim.Resetter.
func (c *Constant) Reset() {}

// SteadyFor implements sim.BulkStepper: a fixed draw is steady forever.
func (c *Constant) SteadyFor(_ sim.Time, _ sim.Time, _ float64) int64 { return 1 << 62 }

// StepN implements sim.BulkStepper: stateless, nothing to replay.
func (c *Constant) StepN(_ sim.Time, _ sim.Time, _ float64, _ int64) {}
