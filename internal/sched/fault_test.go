package sched

import (
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/fault"
	"hcapp/internal/pid"
	"hcapp/internal/psn"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

// faultOpts parameterizes faultParts.
type faultOpts struct {
	injector *fault.Injector
	clamp    *core.Clamp
	holdover core.HoldoverConfig
	watchdog core.WatchdogConfig
	target   float64
}

// faultParts builds a one-domain engine with the resilience stack wired
// the way experiment.Build does: holdover in the global controller, a
// watchdog on the domain, the clamp after the controller.
func faultParts(t *testing.T, o faultOpts) (*Engine, *cubicLoad) {
	t.Helper()
	gvr := vr.MustRegulator(vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 150, SlewRate: 5e6})
	sensor := vr.MustSensor(vr.SensorConfig{Delay: 60, FilterTau: 200}, dt)
	line := psn.MustDelayLine(75, dt, 0.95)
	if o.target == 0 {
		o.target = 80
	}
	global := core.MustGlobal(core.GlobalConfig{
		Period:      sim.Microsecond,
		TargetPower: o.target,
		PID: pid.Config{
			KP: 0.006, KI: 2500, FeedForward: 0.95,
			OutMin: 0.6, OutMax: 1.2, OverGain: 6,
		},
		Holdover: o.holdover,
	})
	dom := core.MustDomain("load", config.DomainConfig{
		Scale: 1.0, VMin: 0.6, VMax: 1.2,
		VR: vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 130, SlewRate: 5e6},
	})
	if o.watchdog.Timeout > 0 {
		dom.EnableWatchdog(o.watchdog)
	}
	load := newCubicLoad("load", 80/(0.95*0.95*0.95), 0, 1e6)
	rec := trace.MustRecorder(dt, false)
	eng := MustNew(Config{
		DT:       dt,
		GlobalVR: gvr,
		Sensor:   sensor,
		PSN:      line,
		Global:   global,
		Slots:    []Slot{{Domain: dom, Comp: load}},
		Recorder: rec,
		Injector: o.injector,
		Clamp:    o.clamp,
	})
	return eng, load
}

// TestIdleInjectorMatchesNilTrace: an attached injector whose plan has
// no active events must be behaviorally invisible — the power trace is
// bit-identical to a run without any injector.
func TestIdleInjectorMatchesNilTrace(t *testing.T) {
	run := func(inj *fault.Injector) []float64 {
		eng, _ := faultParts(t, faultOpts{injector: inj})
		eng.RunFor(200 * sim.Microsecond)
		return append([]float64(nil), eng.Recorder().Totals()...)
	}
	bare := run(nil)
	idle := run(fault.MustNew(fault.Plan{Name: "healthy", Seed: 42}))
	if len(bare) != len(idle) {
		t.Fatalf("trace lengths differ: %d vs %d", len(bare), len(idle))
	}
	for i := range bare {
		if bare[i] != idle[i] {
			t.Fatalf("step %d: %g (nil) vs %g (idle injector)", i, bare[i], idle[i])
		}
	}
}

// TestInjectedRunIsDeterministic: the same plan re-run (via Reset and
// via a fresh engine) reproduces the identical perturbed trace.
func TestInjectedRunIsDeterministic(t *testing.T) {
	plan := fault.Plan{Name: "mix", Seed: 7, Events: []fault.Event{
		{Class: fault.SensorNoise, Start: 20 * sim.Microsecond, End: 120 * sim.Microsecond, Param: 4},
		{Class: fault.SensorDropout, Start: 50 * sim.Microsecond, End: 150 * sim.Microsecond, Param: 0.5},
		{Class: fault.RailDroop, Start: 80 * sim.Microsecond, End: 100 * sim.Microsecond, Param: 0.03},
	}}
	eng, _ := faultParts(t, faultOpts{injector: fault.MustNew(plan)})
	eng.RunFor(200 * sim.Microsecond)
	first := append([]float64(nil), eng.Recorder().Totals()...)
	counts := eng.Injector().Counts()

	eng.Reset()
	eng.RunFor(200 * sim.Microsecond)
	second := eng.Recorder().Totals()
	if len(first) != len(second) {
		t.Fatalf("trace lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("step %d: %g vs %g after Reset", i, first[i], second[i])
		}
	}
	if eng.Injector().Counts() != counts {
		t.Fatalf("counts differ across identical runs: %+v vs %+v", counts, eng.Injector().Counts())
	}
	if counts.SenseDropped == 0 || counts.SensePerturbed == 0 || counts.RailSteps == 0 {
		t.Fatalf("plan did not exercise all hooks: %+v", counts)
	}
}

// TestSensorBlackoutEngagesFailSafe: with every sample dropped and
// holdover armed, the global controller must ride through MaxAge on its
// held command and then drop to the fail-safe floor.
func TestSensorBlackoutEngagesFailSafe(t *testing.T) {
	plan := fault.Plan{Name: "blackout", Events: []fault.Event{
		{Class: fault.SensorDropout, Start: 50 * sim.Microsecond, End: 250 * sim.Microsecond, Param: 1.0},
	}}
	eng, _ := faultParts(t, faultOpts{
		injector: fault.MustNew(plan),
		holdover: core.HoldoverConfig{MaxAge: 20 * sim.Microsecond},
	})
	eng.RunFor(300 * sim.Microsecond)
	g := eng.GlobalController()
	if g.HoldoverCycles() == 0 {
		t.Error("no holdover cycles during blackout onset")
	}
	if g.FailsafeCycles() == 0 {
		t.Error("fail-safe never engaged past the age bound")
	}
	// ~180 µs of blackout beyond the 20 µs bound at a 1 µs period.
	if got := g.FailsafeCycles(); got < 150 {
		t.Errorf("failsafe cycles %d, want >= 150", got)
	}
}

// TestDomainSilenceTripsWatchdog: a hung domain controller must be
// caught by its watchdog and parked at the fail-safe voltage.
func TestDomainSilenceTripsWatchdog(t *testing.T) {
	plan := fault.Plan{Name: "hang", Events: []fault.Event{
		{Class: fault.DomainSilence, Start: 50 * sim.Microsecond, End: 150 * sim.Microsecond, Domain: "load"},
	}}
	eng, _ := faultParts(t, faultOpts{
		injector: fault.MustNew(plan),
		watchdog: core.WatchdogConfig{Timeout: 20 * sim.Microsecond},
	})
	eng.RunFor(100 * sim.Microsecond) // stop mid-silence
	d := eng.Domain("load")
	if d.WatchdogTrips() != 1 {
		t.Fatalf("watchdog trips = %d, want 1", d.WatchdogTrips())
	}
	if !d.WatchdogTripped() || d.Output() != 0.6 {
		t.Fatalf("domain at %g (tripped=%v), want parked at 0.6", d.Output(), d.WatchdogTripped())
	}
	// Let the controller resume: the domain recovers and the trip clears.
	eng.RunFor(100 * sim.Microsecond)
	if d.WatchdogTripped() {
		t.Fatal("watchdog still tripped after controller resumed")
	}
}

// TestClampHoldsCapAgainstLyingSensor is the tentpole safety property
// at engine scope: a sensor stuck far below truth blinds the PID into
// commanding maximum voltage, and the clamp alone must keep the true
// power's window average under the cap.
func TestClampHoldsCapAgainstLyingSensor(t *testing.T) {
	const capW = 100.0
	window := 20 * sim.Microsecond
	plan := fault.Plan{Name: "stuck-low", Events: []fault.Event{
		{Class: fault.SensorStuck, Start: 50 * sim.Microsecond, End: 400 * sim.Microsecond, Param: 20},
	}}
	run := func(clamp *core.Clamp) float64 {
		eng, _ := faultParts(t, faultOpts{injector: fault.MustNew(plan), clamp: clamp})
		eng.RunFor(500 * sim.Microsecond)
		return eng.Recorder().MaxWindowAvg(window)
	}
	unprotected := run(nil)
	if unprotected <= capW {
		t.Fatalf("setup: lying sensor did not breach the cap (max %g)", unprotected)
	}
	clamp := core.MustClamp(core.ClampConfig{CapW: capW, Window: window, DT: dt})
	protected := run(clamp)
	if protected > capW {
		t.Fatalf("clamp failed: window max %g above cap %g", protected, capW)
	}
	if clamp.Trips() == 0 {
		t.Fatal("clamp never tripped while the sensor lied")
	}
}

// TestVRSlewDegradationRestored: the injector degrades the global VR
// slew only inside the event window and restores it after.
func TestVRSlewDegradationRestored(t *testing.T) {
	plan := fault.Plan{Name: "slew", Events: []fault.Event{
		{Class: fault.VRSlew, Start: 10 * sim.Microsecond, End: 20 * sim.Microsecond, Param: 0.25},
	}}
	eng, _ := faultParts(t, faultOpts{injector: fault.MustNew(plan)})
	eng.RunFor(15 * sim.Microsecond)
	if s := eng.cfg.GlobalVR.SlewScale(); s != 0.25 {
		t.Fatalf("slew scale %g mid-event, want 0.25", s)
	}
	eng.RunFor(10 * sim.Microsecond)
	if s := eng.cfg.GlobalVR.SlewScale(); s != 1 {
		t.Fatalf("slew scale %g after event, want restored to 1", s)
	}
	if c := eng.Injector().Counts(); c.SlewSteps == 0 {
		t.Fatal("slew steps not counted")
	}
}
