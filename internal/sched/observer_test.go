package sched

import (
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/psn"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

// recordingObserver captures what the engine publishes per step.
type recordingObserver struct {
	steps   int64
	lastNow sim.Time
	lastTot float64
	domains []string
	powerOK bool
}

func (o *recordingObserver) ObserveStep(now sim.Time, total float64, domains []DomainSample) {
	o.steps++
	o.lastNow = now
	o.lastTot = total
	if o.domains == nil {
		for _, d := range domains {
			o.domains = append(o.domains, d.Domain)
		}
	}
	sum := 0.0
	for _, d := range domains {
		sum += d.Power
		if d.Voltage <= 0 {
			return
		}
	}
	// Total includes VR conversion loss on top of the component sum;
	// with the lossless test regulator they must match exactly.
	o.powerOK = sum == total
}

func observedEngine(t *testing.T, obs StepObserver) *Engine {
	t.Helper()
	gvrCfg := vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 150, SlewRate: 5e6}
	domCfg := config.DomainConfig{
		Scale: 1.0, VMin: 0.6, VMax: 1.2,
		VR: vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 130, SlewRate: 5e6},
	}
	return MustNew(Config{
		DT:       dt,
		GlobalVR: vr.MustRegulator(gvrCfg),
		Sensor:   vr.MustSensor(vr.SensorConfig{Delay: 60, FilterTau: 200}, dt),
		PSN:      psn.MustDelayLine(75, dt, 0.95),
		Slots: []Slot{
			{Domain: core.MustDomain("cpu", domCfg), Comp: newCubicLoad("cpu", 30, 0, 1e6)},
			{Domain: core.MustDomain("gpu", domCfg), Comp: newCubicLoad("gpu", 50, 0, 1e6)},
		},
		Recorder: trace.MustRecorder(dt, false),
		Observer: obs,
	})
}

func TestObserverSeesEveryStep(t *testing.T) {
	obs := &recordingObserver{}
	eng := observedEngine(t, obs)
	eng.RunFor(10 * sim.Microsecond)

	wantSteps := int64(10 * sim.Microsecond / dt)
	if obs.steps != wantSteps {
		t.Fatalf("observer saw %d steps, want %d", obs.steps, wantSteps)
	}
	if eng.Steps() != wantSteps {
		t.Fatalf("engine.Steps() = %d, want %d", eng.Steps(), wantSteps)
	}
	if obs.lastNow != 10*sim.Microsecond {
		t.Fatalf("last observed now = %d, want %d", obs.lastNow, 10*sim.Microsecond)
	}
	if len(obs.domains) != 2 || obs.domains[0] != "cpu" || obs.domains[1] != "gpu" {
		t.Fatalf("observed domains = %v", obs.domains)
	}
	if !obs.powerOK {
		t.Fatal("per-domain powers do not sum to the observed total")
	}
	if obs.lastTot <= 0 {
		t.Fatalf("observed total power %g not positive", obs.lastTot)
	}
}

func TestObserverResetRestartsStepCount(t *testing.T) {
	obs := &recordingObserver{}
	eng := observedEngine(t, obs)
	eng.RunFor(2 * sim.Microsecond)
	eng.Reset()
	if eng.Steps() != 0 {
		t.Fatalf("Steps() after Reset = %d", eng.Steps())
	}
	eng.RunFor(sim.Microsecond)
	if eng.Steps() != int64(sim.Microsecond/dt) {
		t.Fatalf("Steps() after rerun = %d", eng.Steps())
	}
}

// TestObserverZeroAllocSteps pins the hot-path contract: an observed
// engine step allocates nothing for the observation itself.
func TestObserverZeroAllocSteps(t *testing.T) {
	obs := &recordingObserver{}
	eng := observedEngine(t, obs)
	eng.RunFor(sim.Microsecond) // warm-up: recorder growth, name capture
	allocs := testing.AllocsPerRun(100, func() {
		eng.RunFor(dt)
	})
	// The trace recorder's append may occasionally grow its backing
	// array; anything beyond that means the observer path allocates.
	if allocs > 1 {
		t.Fatalf("observed step allocates %.1f/op", allocs)
	}
}
