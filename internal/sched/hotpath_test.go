package sched

import (
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/fault"
	"hcapp/internal/pid"
	"hcapp/internal/psn"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

// trackingEngine builds a fully loaded engine — global controller,
// component tracking, safety clamp and a fault injector with live
// events — so the Reset and allocation guards below exercise every
// piece of per-step state the engine owns.
func trackingEngine(t *testing.T) *Engine {
	t.Helper()
	gvr := vr.MustRegulator(vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 150, SlewRate: 5e6})
	sensor := vr.MustSensor(vr.SensorConfig{Delay: 60, FilterTau: 200}, dt)
	line := psn.MustDelayLine(75, dt, 0.95)
	global := core.MustGlobal(core.GlobalConfig{
		Period:      sim.Microsecond,
		TargetPower: 80,
		PID: pid.Config{
			KP: 0.006, KI: 2500, FeedForward: 0.95,
			OutMin: 0.6, OutMax: 1.2, OverGain: 6,
		},
	})
	dom := core.MustDomain("load", config.DomainConfig{
		Scale: 1.0, VMin: 0.6, VMax: 1.2,
		VR: vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 130, SlewRate: 5e6},
	})
	load := newCubicLoad("load", 80/(0.95*0.95*0.95), 0, 1e6)
	rec := trace.MustRecorder(dt, true)
	inj := fault.MustNew(fault.Plan{Name: "mid-run-noise", Seed: 17, Events: []fault.Event{
		{Class: fault.SensorNoise, Start: 100 * sim.Microsecond, End: 200 * sim.Microsecond, Param: 3},
	}})
	clamp := core.MustClamp(core.ClampConfig{CapW: 95, DT: dt})
	return MustNew(Config{
		DT: dt, GlobalVR: gvr, Sensor: sensor, PSN: line, Global: global,
		Slots:           []Slot{{Domain: dom, Comp: load}},
		Recorder:        rec,
		TrackComponents: true,
		Injector:        inj,
		Clamp:           clamp,
	})
}

// TestRunForWholeStepsOnly pins the duration-clamp fix: a span that is
// not a multiple of DT must stop at the last step boundary inside it,
// never overshoot past it. The leftover fraction is not banked — a
// later RunFor measures from the current (clamped) position.
func TestRunForWholeStepsOnly(t *testing.T) {
	eng, _ := testParts(t, false, 0)
	eng.RunFor(1050 * sim.Nanosecond) // 10.5 steps
	if eng.Now() != 1000*sim.Nanosecond {
		t.Fatalf("Now = %d, want 1000 (no overshoot)", eng.Now())
	}
	if eng.Recorder().Steps() != 10 {
		t.Fatalf("steps = %d, want 10", eng.Recorder().Steps())
	}
	eng.RunFor(50 * sim.Nanosecond) // less than one step: no motion
	if eng.Now() != 1000*sim.Nanosecond {
		t.Fatalf("sub-step RunFor moved the clock to %d", eng.Now())
	}
	eng.RunFor(150 * sim.Nanosecond) // one whole step fits
	if eng.Now() != 1100*sim.Nanosecond {
		t.Fatalf("Now = %d, want 1100", eng.Now())
	}
}

// TestRunWholeStepsOnly is the same contract for Run's deadline: with
// unreachable work, a maxDur of 10.5 steps stops at step 10 — and a
// deadline exactly on a boundary includes that final step.
func TestRunWholeStepsOnly(t *testing.T) {
	eng, _ := testParts(t, false, 1e12)
	res := eng.Run(1050 * sim.Nanosecond)
	if res.Duration != 1000*sim.Nanosecond {
		t.Fatalf("Duration = %d, want 1000 (no overshoot)", res.Duration)
	}
	eng2, _ := testParts(t, false, 1e12)
	if res := eng2.Run(1 * sim.Microsecond); res.Duration != 1*sim.Microsecond {
		t.Fatalf("exact-multiple deadline cut short: %d", res.Duration)
	}
}

// TestResetRunByteIdentical is the Reset audit's acceptance test: on a
// fully loaded engine (global controller, tracking recorder, clamp,
// injector with mid-run events), Run → Reset → Run must reproduce the
// trace bit for bit — any engine field missed by Reset shows up here
// as a diverging sample.
func TestResetRunByteIdentical(t *testing.T) {
	eng := trackingEngine(t)
	const span = 300 * sim.Microsecond // crosses the fault window both ways

	capture := func() ([]float64, map[string][]float64) {
		eng.RunFor(span)
		rec := eng.Recorder()
		totals := append([]float64(nil), rec.Totals()...)
		cols := make(map[string][]float64)
		for _, name := range rec.ComponentNames() {
			pts := rec.ComponentSeries(name, dt)
			vals := make([]float64, len(pts))
			for i, p := range pts {
				vals[i] = p.P
			}
			cols[name] = vals
		}
		return totals, cols
	}

	t1, c1 := capture()
	eng.Reset()
	if eng.Now() != 0 || eng.Steps() != 0 || eng.Recorder().Steps() != 0 {
		t.Fatal("reset left the clock or trace non-empty")
	}
	t2, c2 := capture()

	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ after reset: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("totals diverge at step %d: %g vs %g", i, t1[i], t2[i])
		}
	}
	if len(c1) != len(c2) {
		t.Fatalf("column sets differ: %d vs %d", len(c1), len(c2))
	}
	for name, v1 := range c1 {
		v2, ok := c2[name]
		if !ok {
			t.Fatalf("column %q missing after reset", name)
		}
		if len(v1) != len(v2) {
			t.Fatalf("column %q lengths differ: %d vs %d", name, len(v1), len(v2))
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("column %q diverges at %d: %g vs %g", name, i, v1[i], v2[i])
			}
		}
	}
}

// TestStepSteadyStateZeroAllocs is the zero-allocation contract on the
// fully tracked hot path: once the trace buffers are sized, stepping
// the engine — including global control, component tracking, the
// clamp comparator and an attached injector — allocates nothing.
// Recorder capacity is reserved up front so the guard measures the
// step loop, not slice growth.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates in instrumented code")
	}
	eng := trackingEngine(t)
	const span = 1024 // steps per measured run
	const runs = 5
	// Warm-up faults in code paths (including the fault window, so the
	// injector's active-event machinery is exercised and sized).
	eng.RunFor(300 * sim.Microsecond)
	eng.Recorder().Grow((runs + 2) * span)
	allocs := testing.AllocsPerRun(runs, func() {
		for i := 0; i < span; i++ {
			eng.now += dt
			eng.step()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state step allocates %.1f times per %d steps, want 0", allocs, span)
	}
}
