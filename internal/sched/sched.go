// Package sched is the central simulation controller (paper §4.1): the
// fixed-timestep co-simulation engine that steps the package's voltage
// regulators, power supply network, chiplet simulators, sensing path and
// the HCAPP global controller on a common clock, and records the power
// trace.
//
// One engine step, in order:
//
//  1. the global VR slews toward its commanded voltage;
//  2. the PSN delay line propagates the global rail to the domains, with
//     IR droop from the previous step's load;
//  3. each domain controller normalizes the rail and steps its chiplet;
//  4. the summed package power enters the sensing path;
//  5. on a control-cycle boundary, the global controller reads the
//     sensed power and commands a new global voltage.
//
// The per-slot state the step loop touches lives in parallel arrays
// compiled at construction (see Engine), and an opt-in adaptive mode
// (Config.Adaptive) strides over bitwise-steady regions; see docs/PERF.md.
package sched

import (
	"fmt"

	"hcapp/internal/accelsim"
	"hcapp/internal/chiplet"
	"hcapp/internal/core"
	"hcapp/internal/fault"
	"hcapp/internal/psn"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

// Slot binds a domain controller to the component it powers.
type Slot struct {
	Domain *core.Domain
	Comp   sim.Component
}

// Supervisor is an optional software-timescale controller invoked on its
// own period with full engine access — the consumer of the §3.2/§5.3
// software interface (priority registers). Policies live in
// internal/swctl; the engine only provides the hook.
type Supervisor interface {
	// Period is the supervisor's invocation period (OS timescale,
	// typically ≥ 1 ms).
	Period() sim.Time
	// Tick runs one supervision pass at time now.
	Tick(now sim.Time, eng *Engine)
}

// DomainSample is one domain's contribution to a step, delivered to a
// StepObserver. The slice passed to ObserveStep is reused between steps;
// observers must copy anything they keep.
type DomainSample struct {
	// Domain is the domain controller's name ("cpu", "gpu", "sha", ...).
	Domain string
	// Component is the powered component's name.
	Component string
	// Power is the component's draw over the step, watts.
	Power float64
	// Voltage is the domain output voltage applied this step.
	Voltage float64
}

// StepObserver receives live per-step telemetry from a running engine —
// the hook the hcapp-serve metrics/trace pipeline hangs off. It is
// called once per engine step, on the simulation goroutine, after all
// components have stepped; implementations must be fast (the engine
// steps every 100 ns of simulated time) and must not retain domains.
type StepObserver interface {
	ObserveStep(now sim.Time, totalPower float64, domains []DomainSample)
}

// multiObserver fans one step out to several observers, in order.
type multiObserver []StepObserver

func (m multiObserver) ObserveStep(now sim.Time, totalPower float64, domains []DomainSample) {
	for _, o := range m {
		o.ObserveStep(now, totalPower, domains)
	}
}

// Observers combines step observers into one, dropping nils: an energy
// ledger and a live-metrics observer can watch the same engine without
// either knowing about the other. Zero non-nil observers return nil (the
// engine then skips the observer path entirely), and a single observer
// is returned unwrapped, so composition never costs an extra interface
// hop unless there really are several.
func Observers(obs ...StepObserver) StepObserver {
	out := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// Config assembles an engine.
type Config struct {
	DT       sim.Time
	GlobalVR *vr.Regulator
	Sensor   *vr.Sensor
	PSN      *psn.DelayLine
	Droop    psn.Droop
	// Global is the level-1 controller; nil runs the fixed-voltage
	// baseline (the global VR holds its initial voltage forever).
	Global *core.Global
	Slots  []Slot
	// Recorder receives the power trace; required.
	Recorder *trace.Recorder
	// TrackComponents mirrors the recorder's per-component tracking.
	TrackComponents bool
	// Supervisor, when non-nil, runs on its own period (software
	// control on top of HCAPP, §5.3/§6).
	Supervisor Supervisor
	// Observer, when non-nil, receives per-step telemetry (power,
	// per-domain voltage). Costs one interface call per step plus a few
	// stores; no allocations. Attaching an observer disables adaptive
	// striding (the observer contract is one call per step).
	Observer StepObserver
	// Injector, when non-nil, perturbs the step loop with deterministic
	// faults (sensing-path defects, rail droop, VR degradation, domain
	// silence); see internal/fault. A nil injector costs one pointer
	// comparison per step (guarded in bench_test.go).
	Injector *fault.Injector
	// Clamp, when non-nil, is the package-level safety clamp: it runs
	// after the global controller each step against the *true* summed
	// power, so the cap holds even when the sensing path lies.
	Clamp *core.Clamp
	// Adaptive enables steady-state striding: when every piece of
	// engine state is at an exact floating-point fixed point and no
	// event boundary (control fire, supervisor tick, fault window,
	// workload phase edge, epoch, completion) is near, the engine
	// replays many steps at once. Results — trace, recorder columns,
	// counters — are bitwise identical to fixed-step execution; the
	// mode only changes wall-clock time. Ignored when an Observer is
	// attached or any component does not implement sim.BulkStepper.
	Adaptive bool
}

// slotKind selects the devirtualized dispatch for one slot: the engine
// calls the concrete Step of the known component types directly and
// falls back to the interface for anything else.
type slotKind uint8

const (
	slotGeneric slotKind = iota
	slotChiplet
	slotAccel
	slotConstant
)

// Engine is the central simulation controller. Per-slot hot-path state
// is compiled into parallel arrays at construction (struct-of-arrays):
// the step loop indexes flat slices instead of chasing interface
// pointers, recorder keys are pre-registered column indices, and
// completion is a counter maintained on the done edge instead of a
// per-step rescan.
type Engine struct {
	cfg       Config
	now       sim.Time
	lastTotal float64
	nextSup   sim.Time
	supTicks  int64
	steps     int64
	// obsBuf is the reusable per-step sample buffer handed to the
	// observer (names prefilled at construction; zero allocs per step).
	obsBuf []DomainSample
	// lastGoodSense is when the sensing path last received a real
	// sample (fault injection drops age the reading).
	lastGoodSense sim.Time
	// clampHeld tracks the safety clamp's engagement across steps to
	// detect the release edge.
	clampHeld bool
	// slewDirty records that the injector degraded the global VR slew,
	// so the restore store happens once instead of every idle step.
	slewDirty bool
	// injIdleUntil caches the injector's NextChange bound: every step
	// strictly before it is guaranteed idle, so the no-fault fast path
	// is one field compare with no call (the <2% overhead contract).
	injIdleUntil sim.Time

	// Compiled slot table. All slices are len(cfg.Slots).
	track    bool // component tracking on AND the recorder records it
	kinds    []slotKind
	doms     []*core.Domain
	domNames []string
	chips    []*chiplet.Chiplet
	accels   []*accelsim.Accel
	consts   []*chiplet.Constant
	comps    []sim.Component
	bulks    []sim.BulkStepper // nil for components without bulk stepping
	compCols []int             // recorder column per component
	voltCols []int             // recorder column per "voltage:<domain>"
	railCol  int               // recorder column for "voltage:rail"
	vdom     []float64         // last step's domain voltages
	pw       []float64         // last step's per-component power
	doneFlag []bool            // completion cache (non-generic slots)
	notDone  int               // undone non-generic slots
	generics []int             // slot indices needing interface Done()

	// Adaptive-stepping state: a snapshot of the quantities the last
	// step produced, enough to prove the next step would be identical.
	adaptiveOK   bool
	prevTotal    float64 // lastTotal as seen BY the last step (droop input)
	lastVglobal  float64
	lastVrail    float64
	lastInjIdle  bool
	strides      int64
	stridedSteps int64
}

// New validates and builds an engine.
func New(cfg Config) (*Engine, error) {
	switch {
	case cfg.DT <= 0:
		return nil, fmt.Errorf("sched: non-positive timestep %d", cfg.DT)
	case cfg.GlobalVR == nil:
		return nil, fmt.Errorf("sched: missing global VR")
	case cfg.Sensor == nil:
		return nil, fmt.Errorf("sched: missing sensor")
	case cfg.PSN == nil:
		return nil, fmt.Errorf("sched: missing PSN delay line")
	case len(cfg.Slots) == 0:
		return nil, fmt.Errorf("sched: no components")
	case cfg.Recorder == nil:
		return nil, fmt.Errorf("sched: missing recorder")
	}
	for i, s := range cfg.Slots {
		if s.Domain == nil || s.Comp == nil {
			return nil, fmt.Errorf("sched: slot %d incomplete", i)
		}
	}
	e := &Engine{cfg: cfg}
	if cfg.Observer != nil {
		e.obsBuf = make([]DomainSample, len(cfg.Slots))
		for i, s := range cfg.Slots {
			e.obsBuf[i].Domain = s.Domain.Name()
			e.obsBuf[i].Component = s.Comp.Name()
		}
	}
	if cfg.Supervisor != nil {
		if cfg.Supervisor.Period() <= 0 {
			return nil, fmt.Errorf("sched: supervisor period must be positive")
		}
		e.nextSup = cfg.Supervisor.Period()
	}
	e.compile()
	return e, nil
}

// compile builds the struct-of-arrays slot table: concrete dispatch
// kinds, prefilled recorder columns (the per-step "voltage:"+name
// concatenation used to allocate on every tracked step), and the
// completion cache.
func (e *Engine) compile() {
	n := len(e.cfg.Slots)
	e.track = e.cfg.TrackComponents && e.cfg.Recorder.Tracking()
	e.kinds = make([]slotKind, n)
	e.doms = make([]*core.Domain, n)
	e.domNames = make([]string, n)
	e.chips = make([]*chiplet.Chiplet, n)
	e.accels = make([]*accelsim.Accel, n)
	e.consts = make([]*chiplet.Constant, n)
	e.comps = make([]sim.Component, n)
	e.bulks = make([]sim.BulkStepper, n)
	e.compCols = make([]int, n)
	e.voltCols = make([]int, n)
	e.vdom = make([]float64, n)
	e.pw = make([]float64, n)
	e.doneFlag = make([]bool, n)
	e.generics = nil
	e.railCol = -1
	if e.track {
		e.railCol = e.cfg.Recorder.Column("voltage:rail")
	}
	for i, s := range e.cfg.Slots {
		e.doms[i] = s.Domain
		e.domNames[i] = s.Domain.Name()
		e.comps[i] = s.Comp
		e.bulks[i], _ = s.Comp.(sim.BulkStepper)
		switch c := s.Comp.(type) {
		case *chiplet.Chiplet:
			e.kinds[i] = slotChiplet
			e.chips[i] = c
		case *accelsim.Accel:
			e.kinds[i] = slotAccel
			e.accels[i] = c
		case *chiplet.Constant:
			e.kinds[i] = slotConstant
			e.consts[i] = c
		default:
			e.kinds[i] = slotGeneric
			e.generics = append(e.generics, i)
		}
		e.compCols[i] = -1
		e.voltCols[i] = -1
		if e.track {
			e.compCols[i] = e.cfg.Recorder.Column(s.Comp.Name())
			e.voltCols[i] = e.cfg.Recorder.Column("voltage:" + s.Domain.Name())
		}
	}
	e.resetDoneCache()
	// Striding needs a bulk-capable component in every slot and an
	// unobserved engine (observers are promised one call per step).
	e.adaptiveOK = e.cfg.Adaptive && e.cfg.Observer == nil
	for _, b := range e.bulks {
		if b == nil {
			e.adaptiveOK = e.adaptiveOK && false
		}
	}
}

// resetDoneCache recomputes the completion cache from component state.
func (e *Engine) resetDoneCache() {
	e.notDone = 0
	for i := range e.comps {
		if e.kinds[i] == slotGeneric {
			// Generic slots are re-polled in allDone; the cache only
			// covers the concrete kinds whose completion is monotonic
			// during a run.
			e.doneFlag[i] = false
			continue
		}
		e.doneFlag[i] = e.comps[i].Done()
		if !e.doneFlag[i] {
			e.notDone++
		}
	}
}

// MustNew is New that panics on invalid configuration.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Result summarizes a run.
type Result struct {
	// Duration is the simulated span of the run.
	Duration sim.Time
	// Completed reports whether every component finished its work
	// before MaxDuration.
	Completed bool
	// Completion maps component name to its completion time (only for
	// components exposing one and which completed).
	Completion map[string]sim.Time
	// ControlCycles is the number of global control actions taken.
	ControlCycles int64
}

// completionTimer is implemented by components that record when they
// finished (the chiplets and the accelerator).
type completionTimer interface {
	CompletionTime() sim.Time
}

// Run advances the simulation until every component is done or maxDur
// elapses, whichever comes first.
func (e *Engine) Run(maxDur sim.Time) Result {
	return e.RunWithCancel(maxDur, nil)
}

// cancelCheckEvery is how many engine steps pass between cancellation
// polls in RunWithCancel — coarse enough to stay off the hot path, fine
// enough that a cancelled run stops within milliseconds of wall clock.
const cancelCheckEvery = 4096

// RunWithCancel is Run with a cooperative stop: cancelled, when
// non-nil, is polled every cancelCheckEvery steps and a true return
// ends the run early (Completed reports false unless every component
// already finished). It is how the job server bounds a hung or
// oversized simulation with a wall-clock timeout.
//
// The run executes whole steps only: when maxDur is not a multiple of
// DT it stops at the last step boundary at or before maxDur, never
// past it (partial steps would corrupt the uniform-dt trace).
func (e *Engine) RunWithCancel(maxDur sim.Time, cancelled func() bool) Result {
	dt := e.cfg.DT
	sinceCheck := int64(0)
	for e.now+dt <= maxDur {
		e.now += dt
		e.step()
		if e.allDone() {
			break
		}
		if e.adaptiveOK {
			if n := e.strideLen(maxDur); n > 0 {
				e.stride(n)
				sinceCheck += n
			}
		}
		if cancelled != nil {
			if sinceCheck++; sinceCheck >= cancelCheckEvery {
				sinceCheck = 0
				if cancelled() {
					break
				}
			}
		}
	}
	res := Result{
		Duration:   e.now,
		Completed:  e.allDone(),
		Completion: make(map[string]sim.Time),
	}
	if e.cfg.Global != nil {
		res.ControlCycles = e.cfg.Global.Cycles()
	}
	for _, s := range e.cfg.Slots {
		if ct, ok := s.Comp.(completionTimer); ok {
			if t := ct.CompletionTime(); t >= 0 {
				res.Completion[s.Comp.Name()] = t
			}
		}
	}
	return res
}

// RunFor advances the simulation by dur regardless of component
// completion (used for trace generation and tuning). Like Run it
// executes whole steps only, stopping at the last boundary within dur.
func (e *Engine) RunFor(dur sim.Time) {
	dt := e.cfg.DT
	end := e.now + dur
	for e.now+dt <= end {
		e.now += dt
		e.step()
		if e.adaptiveOK {
			if n := e.strideLen(end); n > 0 {
				e.stride(n)
			}
		}
	}
}

func (e *Engine) step() {
	now, dt := e.now, e.cfg.DT

	// 0. Fault injection: resolve this step's perturbations (one time
	// comparison when the injector is attached but idle, one pointer
	// comparison when absent).
	inj := e.cfg.Injector
	injActive := false
	if inj != nil && now >= e.injIdleUntil {
		injActive = inj.BeginStep(now)
		// The slew scale must be *restored* once a VRSlew window ends,
		// but an idle injector must not pay a store per step — the
		// restore happens once, on the first idle step after an active
		// one (slewDirty). While idle the injector promises no change
		// strictly before NextChange, so steps until then skip
		// BeginStep entirely (slewDirty is false by then: it was
		// cleared on the step that cached the bound).
		if injActive {
			e.cfg.GlobalVR.SetSlewScale(inj.SlewScale())
			e.slewDirty = true
		} else {
			e.injIdleUntil = inj.NextChange()
			if e.slewDirty {
				e.cfg.GlobalVR.SetSlewScale(1)
				e.slewDirty = false
			}
		}
	}

	// 1. Global rail.
	vglobal := e.cfg.GlobalVR.Step(now, dt)

	// 2. Power supply network: transport delay + IR droop from the
	// previous step's current draw.
	vrail := e.cfg.PSN.Step(vglobal)
	vrail = e.cfg.Droop.Apply(vrail, e.lastTotal)
	if injActive {
		vrail = inj.Rail(vrail)
	}

	// The droop input is what the stride check must compare against:
	// the next step is only a replay if it sees the same lastTotal.
	e.prevTotal = e.lastTotal
	e.lastVglobal = vglobal
	e.lastVrail = vrail
	e.lastInjIdle = !injActive

	// 3. Domains and components, through the compiled slot table.
	total := 0.0
	if e.track {
		e.cfg.Recorder.RecordColumn(e.railCol, vrail)
	}
	for i := range e.kinds {
		d := e.doms[i]
		var vdom float64
		if injActive && inj.Silenced(e.domNames[i]) {
			vdom = d.StepSilent(now, dt)
		} else {
			vdom = d.Step(now, dt, vrail)
		}
		var res sim.StepResult
		switch e.kinds[i] {
		case slotChiplet:
			res = e.chips[i].Step(now, dt, vdom)
		case slotAccel:
			res = e.accels[i].Step(now, dt, vdom)
		case slotConstant:
			res = e.consts[i].Step(now, dt, vdom)
		default:
			res = e.comps[i].Step(now, dt, vdom)
		}
		e.vdom[i] = vdom
		e.pw[i] = res.Power
		total += res.Power
		if e.track {
			e.cfg.Recorder.RecordColumn(e.compCols[i], res.Power)
			e.cfg.Recorder.RecordColumn(e.voltCols[i], vdom)
		}
		if e.obsBuf != nil {
			e.obsBuf[i].Power = res.Power
			e.obsBuf[i].Voltage = vdom
		}
		// Maintain the completion cache on the done edge (concrete
		// kinds only; their completion is monotonic during a run).
		if !e.doneFlag[i] {
			switch e.kinds[i] {
			case slotChiplet:
				if e.chips[i].Done() {
					e.doneFlag[i] = true
					e.notDone--
				}
			case slotAccel:
				if e.accels[i].Done() {
					e.doneFlag[i] = true
					e.notDone--
				}
			}
		}
	}

	// The global regulator's conversion loss is package power too: it
	// flows through the same pins (zero with the default lossless
	// configuration).
	total += e.cfg.GlobalVR.Loss(total)

	// 4. Sensing path. A dropped sample never reaches the sensor (the
	// filter holds its state) and ages the reading; a perturbed sample
	// goes through like a real one — a stuck ADC still "delivers".
	if injActive {
		if sensed, ok := inj.Sense(total); ok {
			e.cfg.Sensor.Push(sensed)
			e.lastGoodSense = now
		}
	} else {
		e.cfg.Sensor.Push(total)
		e.lastGoodSense = now
	}

	// 5. Global control, then the safety clamp — the clamp runs last and
	// re-commands every engaged step, so no controller command can
	// supersede it.
	if e.cfg.Global != nil {
		e.cfg.Global.StepSensed(now, e.cfg.Sensor.Read(), now-e.lastGoodSense, e.cfg.GlobalVR)
	}
	if e.cfg.Clamp != nil {
		engaged := e.cfg.Clamp.Step(now, total, e.cfg.GlobalVR)
		if e.clampHeld && !engaged && e.cfg.Global != nil {
			// Release edge: restart the PID so windup accumulated while
			// the override poisoned the loop doesn't drive the recovery.
			e.cfg.Global.NotifyOverrideRelease()
		}
		e.clampHeld = engaged
	}

	e.cfg.Recorder.Record(total)
	e.lastTotal = total
	e.steps++
	if e.cfg.Observer != nil {
		e.cfg.Observer.ObserveStep(now, total, e.obsBuf)
	}

	// 6. Software supervision (OS timescale).
	if e.cfg.Supervisor != nil && now >= e.nextSup {
		e.cfg.Supervisor.Tick(now, e)
		e.nextSup = now + e.cfg.Supervisor.Period()
		e.supTicks++
	}
}

// minStride is the smallest stride worth the steady checks: below this
// the replay bookkeeping costs as much as just stepping.
const minStride = 4

// strideLen returns how many steps after the current one are provably
// bitwise identical to it, bounded so the stride ends strictly before
// the run end and before every event boundary: global control fires,
// supervisor ticks, fault windows, workload phase edges, local-control
// epochs, and work completion. Zero means step normally.
//
// The proof obligation is an induction: if the last step saw the same
// droop input it produced (lastTotal == prevTotal), the injector was
// idle, the regulators are settled, the delay lines and sliding windows
// are flat, the sensor filter is at its exact fixed point, and every
// component certifies its next steps reproduce its last one, then the
// next step performs the identical floating-point operations on
// identical state — so its outputs equal the last step's bitwise, and
// the invariants still hold afterwards.
func (e *Engine) strideLen(end sim.Time) int64 {
	// Cheap scalar gates first: almost every non-steady step fails here
	// for the cost of a few compares.
	if e.lastTotal != e.prevTotal || !e.lastInjIdle || e.slewDirty {
		return 0
	}
	cfg := &e.cfg
	dt := cfg.DT
	if !cfg.GlobalVR.Settled() {
		return 0
	}
	n := (end - e.now) / dt
	if cfg.Global != nil {
		if k := sim.StepsBefore(e.now, dt, cfg.Global.NextFire()); k < n {
			n = k
		}
	}
	if cfg.Supervisor != nil {
		if k := sim.StepsBefore(e.now, dt, e.nextSup); k < n {
			n = k
		}
	}
	if cfg.Injector != nil {
		if k := sim.StepsBefore(e.now, dt, cfg.Injector.NextChange()); k < n {
			n = k
		}
	}
	if n < minStride {
		return 0
	}
	if !cfg.PSN.SteadyAt(e.lastVglobal) {
		return 0
	}
	// With a global controller attached its window accumulates Read()
	// once per step, so the filter must be at its bitwise fixed point;
	// without one, nothing observes the filter mid-stride and AdvanceN
	// replays its convergence exactly — only the delay ring must be flat.
	if cfg.Global != nil {
		if !cfg.Sensor.SteadyAt(e.lastTotal) {
			return 0
		}
	} else if !cfg.Sensor.DelaySteadyAt(e.lastTotal) {
		return 0
	}
	for i := range e.doms {
		if !e.doms[i].SteadyAt(e.lastVrail) {
			return 0
		}
		if k := e.bulks[i].SteadyFor(e.now, dt, e.vdom[i]); k < n {
			n = k
			if n < minStride {
				return 0
			}
		}
	}
	// The clamp's window scan is the most expensive check; run it last.
	if cfg.Clamp != nil && !cfg.Clamp.SteadyAt(e.lastTotal) {
		return 0
	}
	return n
}

// stride replays n steps verified by strideLen: components advance
// their accumulators by n repetitions of the identical per-step
// operation, rings rotate in place, the controller accumulates its
// window, and the recorder appends n copies of the steady sample. No
// voltages move and no events fire — strideLen guaranteed both.
func (e *Engine) stride(n int64) {
	cfg := &e.cfg
	dt := cfg.DT
	for i, k := range e.kinds {
		switch k {
		case slotChiplet:
			e.chips[i].StepN(e.now, dt, e.vdom[i], n)
		case slotAccel:
			e.accels[i].StepN(e.now, dt, e.vdom[i], n)
		case slotConstant:
			// Stateless fixed draw: nothing accumulates.
		default:
			e.bulks[i].StepN(e.now, dt, e.vdom[i], n)
		}
	}
	cfg.Sensor.AdvanceN(e.lastTotal, n)
	cfg.PSN.AdvanceN(n)
	if cfg.Global != nil {
		cfg.Global.AccumulateN(cfg.Sensor.Read(), n)
	}
	if cfg.Clamp != nil {
		cfg.Clamp.AdvanceN(n)
	}
	cfg.Recorder.RecordN(e.lastTotal, int(n))
	if e.track {
		cfg.Recorder.RecordColumnN(e.railCol, e.lastVrail, int(n))
		for i := range e.kinds {
			cfg.Recorder.RecordColumnN(e.compCols[i], e.pw[i], int(n))
			cfg.Recorder.RecordColumnN(e.voltCols[i], e.vdom[i], int(n))
		}
	}
	e.now += sim.Time(n) * dt
	e.lastGoodSense = e.now
	e.steps += n
	e.strides++
	e.stridedSteps += n
}

// SupervisorTicks reports how many supervision passes have run.
func (e *Engine) SupervisorTicks() int64 { return e.supTicks }

// Steps reports how many engine steps have executed since construction
// or the last Reset (strided steps included).
func (e *Engine) Steps() int64 { return e.steps }

// Strides reports how many adaptive strides the engine took since
// construction or the last Reset.
func (e *Engine) Strides() int64 { return e.strides }

// StridedSteps reports how many steps were covered by adaptive strides
// (a subset of Steps). StridedSteps/Steps is the striding ratio — the
// fraction of the run that never executed the full step loop.
func (e *Engine) StridedSteps() int64 { return e.stridedSteps }

// LastTotalPower returns the package power drawn on the most recent
// step (telemetry for supervisors).
func (e *Engine) LastTotalPower() float64 { return e.lastTotal }

func (e *Engine) allDone() bool {
	if e.notDone > 0 {
		return false
	}
	for _, i := range e.generics {
		if !e.comps[i].Done() {
			return false
		}
	}
	return true
}

// Now returns the current simulated time.
func (e *Engine) Now() sim.Time { return e.now }

// Recorder returns the engine's trace recorder.
func (e *Engine) Recorder() *trace.Recorder { return e.cfg.Recorder }

// Sensor returns the package power sensor (fault injection, tests).
func (e *Engine) Sensor() *vr.Sensor { return e.cfg.Sensor }

// GlobalController returns the level-1 controller, or nil for the
// fixed-voltage baseline (dynamic retargeting, tests).
func (e *Engine) GlobalController() *core.Global { return e.cfg.Global }

// Slots exposes the engine's component slots (for priority experiments
// and inspection).
func (e *Engine) Slots() []Slot { return e.cfg.Slots }

// Domain returns the named domain controller, or nil.
func (e *Engine) Domain(name string) *core.Domain {
	for _, s := range e.cfg.Slots {
		if s.Domain.Name() == name {
			return s.Domain
		}
	}
	return nil
}

// Component returns the named component, or nil.
func (e *Engine) Component(name string) sim.Component {
	for _, s := range e.cfg.Slots {
		if s.Comp.Name() == name {
			return s.Comp
		}
	}
	return nil
}

// Reset rewinds the engine and everything it owns for another run.
func (e *Engine) Reset() {
	e.now = 0
	e.lastTotal = 0
	e.cfg.GlobalVR.Reset()
	e.cfg.Sensor.Reset()
	e.cfg.PSN.Reset()
	if e.cfg.Global != nil {
		e.cfg.Global.Reset()
	}
	for _, s := range e.cfg.Slots {
		s.Domain.Reset()
		if r, ok := s.Comp.(sim.Resetter); ok {
			r.Reset()
		}
	}
	e.cfg.Recorder.Reset()
	e.supTicks = 0
	e.steps = 0
	e.lastGoodSense = 0
	e.clampHeld = false
	e.slewDirty = false
	e.injIdleUntil = 0
	if e.cfg.Supervisor != nil {
		e.nextSup = e.cfg.Supervisor.Period()
	}
	if e.cfg.Injector != nil {
		e.cfg.Injector.Reset()
	}
	if e.cfg.Clamp != nil {
		e.cfg.Clamp.Reset()
	}
	// Per-slot hot-path state and the steady-stride snapshot.
	for i := range e.vdom {
		e.vdom[i] = 0
		e.pw[i] = 0
	}
	for i := range e.obsBuf {
		e.obsBuf[i].Power = 0
		e.obsBuf[i].Voltage = 0
	}
	e.resetDoneCache()
	e.prevTotal = 0
	e.lastVglobal = 0
	e.lastVrail = 0
	e.lastInjIdle = false
	e.strides = 0
	e.stridedSteps = 0
}

// Injector returns the attached fault injector, or nil.
func (e *Engine) Injector() *fault.Injector { return e.cfg.Injector }

// Clamp returns the attached package safety clamp, or nil.
func (e *Engine) Clamp() *core.Clamp { return e.cfg.Clamp }
