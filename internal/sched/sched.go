// Package sched is the central simulation controller (paper §4.1): the
// fixed-timestep co-simulation engine that steps the package's voltage
// regulators, power supply network, chiplet simulators, sensing path and
// the HCAPP global controller on a common clock, and records the power
// trace.
//
// One engine step, in order:
//
//  1. the global VR slews toward its commanded voltage;
//  2. the PSN delay line propagates the global rail to the domains, with
//     IR droop from the previous step's load;
//  3. each domain controller normalizes the rail and steps its chiplet;
//  4. the summed package power enters the sensing path;
//  5. on a control-cycle boundary, the global controller reads the
//     sensed power and commands a new global voltage.
package sched

import (
	"fmt"

	"hcapp/internal/core"
	"hcapp/internal/fault"
	"hcapp/internal/psn"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

// Slot binds a domain controller to the component it powers.
type Slot struct {
	Domain *core.Domain
	Comp   sim.Component
}

// Supervisor is an optional software-timescale controller invoked on its
// own period with full engine access — the consumer of the §3.2/§5.3
// software interface (priority registers). Policies live in
// internal/swctl; the engine only provides the hook.
type Supervisor interface {
	// Period is the supervisor's invocation period (OS timescale,
	// typically ≥ 1 ms).
	Period() sim.Time
	// Tick runs one supervision pass at time now.
	Tick(now sim.Time, eng *Engine)
}

// DomainSample is one domain's contribution to a step, delivered to a
// StepObserver. The slice passed to ObserveStep is reused between steps;
// observers must copy anything they keep.
type DomainSample struct {
	// Domain is the domain controller's name ("cpu", "gpu", "sha", ...).
	Domain string
	// Component is the powered component's name.
	Component string
	// Power is the component's draw over the step, watts.
	Power float64
	// Voltage is the domain output voltage applied this step.
	Voltage float64
}

// StepObserver receives live per-step telemetry from a running engine —
// the hook the hcapp-serve metrics/trace pipeline hangs off. It is
// called once per engine step, on the simulation goroutine, after all
// components have stepped; implementations must be fast (the engine
// steps every 100 ns of simulated time) and must not retain domains.
type StepObserver interface {
	ObserveStep(now sim.Time, totalPower float64, domains []DomainSample)
}

// multiObserver fans one step out to several observers, in order.
type multiObserver []StepObserver

func (m multiObserver) ObserveStep(now sim.Time, totalPower float64, domains []DomainSample) {
	for _, o := range m {
		o.ObserveStep(now, totalPower, domains)
	}
}

// Observers combines step observers into one, dropping nils: an energy
// ledger and a live-metrics observer can watch the same engine without
// either knowing about the other. Zero non-nil observers return nil (the
// engine then skips the observer path entirely), and a single observer
// is returned unwrapped, so composition never costs an extra interface
// hop unless there really are several.
func Observers(obs ...StepObserver) StepObserver {
	out := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// Config assembles an engine.
type Config struct {
	DT       sim.Time
	GlobalVR *vr.Regulator
	Sensor   *vr.Sensor
	PSN      *psn.DelayLine
	Droop    psn.Droop
	// Global is the level-1 controller; nil runs the fixed-voltage
	// baseline (the global VR holds its initial voltage forever).
	Global *core.Global
	Slots  []Slot
	// Recorder receives the power trace; required.
	Recorder *trace.Recorder
	// TrackComponents mirrors the recorder's per-component tracking.
	TrackComponents bool
	// Supervisor, when non-nil, runs on its own period (software
	// control on top of HCAPP, §5.3/§6).
	Supervisor Supervisor
	// Observer, when non-nil, receives per-step telemetry (power,
	// per-domain voltage). Costs one interface call per step plus a few
	// stores; no allocations.
	Observer StepObserver
	// Injector, when non-nil, perturbs the step loop with deterministic
	// faults (sensing-path defects, rail droop, VR degradation, domain
	// silence); see internal/fault. A nil injector costs one pointer
	// comparison per step (guarded in bench_test.go).
	Injector *fault.Injector
	// Clamp, when non-nil, is the package-level safety clamp: it runs
	// after the global controller each step against the *true* summed
	// power, so the cap holds even when the sensing path lies.
	Clamp *core.Clamp
}

// Engine is the central simulation controller.
type Engine struct {
	cfg       Config
	now       sim.Time
	lastTotal float64
	nextSup   sim.Time
	supTicks  int64
	steps     int64
	// obsBuf is the reusable per-step sample buffer handed to the
	// observer (names prefilled at construction; zero allocs per step).
	obsBuf []DomainSample
	// lastGoodSense is when the sensing path last received a real
	// sample (fault injection drops age the reading).
	lastGoodSense sim.Time
	// clampHeld tracks the safety clamp's engagement across steps to
	// detect the release edge.
	clampHeld bool
	// slewDirty records that the injector degraded the global VR slew,
	// so the restore store happens once instead of every idle step.
	slewDirty bool
}

// New validates and builds an engine.
func New(cfg Config) (*Engine, error) {
	switch {
	case cfg.DT <= 0:
		return nil, fmt.Errorf("sched: non-positive timestep %d", cfg.DT)
	case cfg.GlobalVR == nil:
		return nil, fmt.Errorf("sched: missing global VR")
	case cfg.Sensor == nil:
		return nil, fmt.Errorf("sched: missing sensor")
	case cfg.PSN == nil:
		return nil, fmt.Errorf("sched: missing PSN delay line")
	case len(cfg.Slots) == 0:
		return nil, fmt.Errorf("sched: no components")
	case cfg.Recorder == nil:
		return nil, fmt.Errorf("sched: missing recorder")
	}
	for i, s := range cfg.Slots {
		if s.Domain == nil || s.Comp == nil {
			return nil, fmt.Errorf("sched: slot %d incomplete", i)
		}
	}
	e := &Engine{cfg: cfg}
	if cfg.Observer != nil {
		e.obsBuf = make([]DomainSample, len(cfg.Slots))
		for i, s := range cfg.Slots {
			e.obsBuf[i].Domain = s.Domain.Name()
			e.obsBuf[i].Component = s.Comp.Name()
		}
	}
	if cfg.Supervisor != nil {
		if cfg.Supervisor.Period() <= 0 {
			return nil, fmt.Errorf("sched: supervisor period must be positive")
		}
		e.nextSup = cfg.Supervisor.Period()
	}
	return e, nil
}

// MustNew is New that panics on invalid configuration.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Result summarizes a run.
type Result struct {
	// Duration is the simulated span of the run.
	Duration sim.Time
	// Completed reports whether every component finished its work
	// before MaxDuration.
	Completed bool
	// Completion maps component name to its completion time (only for
	// components exposing one and which completed).
	Completion map[string]sim.Time
	// ControlCycles is the number of global control actions taken.
	ControlCycles int64
}

// completionTimer is implemented by components that record when they
// finished (the chiplets and the accelerator).
type completionTimer interface {
	CompletionTime() sim.Time
}

// Run advances the simulation until every component is done or maxDur
// elapses, whichever comes first.
func (e *Engine) Run(maxDur sim.Time) Result {
	return e.RunWithCancel(maxDur, nil)
}

// cancelCheckEvery is how many engine steps pass between cancellation
// polls in RunWithCancel — coarse enough to stay off the hot path, fine
// enough that a cancelled run stops within milliseconds of wall clock.
const cancelCheckEvery = 4096

// RunWithCancel is Run with a cooperative stop: cancelled, when
// non-nil, is polled every cancelCheckEvery steps and a true return
// ends the run early (Completed reports false unless every component
// already finished). It is how the job server bounds a hung or
// oversized simulation with a wall-clock timeout.
func (e *Engine) RunWithCancel(maxDur sim.Time, cancelled func() bool) Result {
	dt := e.cfg.DT
	sinceCheck := 0
	for e.now < maxDur {
		e.now += dt
		e.step()
		if e.allDone() {
			break
		}
		if cancelled != nil {
			if sinceCheck++; sinceCheck >= cancelCheckEvery {
				sinceCheck = 0
				if cancelled() {
					break
				}
			}
		}
	}
	res := Result{
		Duration:   e.now,
		Completed:  e.allDone(),
		Completion: make(map[string]sim.Time),
	}
	if e.cfg.Global != nil {
		res.ControlCycles = e.cfg.Global.Cycles()
	}
	for _, s := range e.cfg.Slots {
		if ct, ok := s.Comp.(completionTimer); ok {
			if t := ct.CompletionTime(); t >= 0 {
				res.Completion[s.Comp.Name()] = t
			}
		}
	}
	return res
}

// RunFor advances exactly dur of simulated time regardless of component
// completion (used for trace generation and tuning).
func (e *Engine) RunFor(dur sim.Time) {
	end := e.now + dur
	for e.now < end {
		e.now += e.cfg.DT
		e.step()
	}
}

func (e *Engine) step() {
	now, dt := e.now, e.cfg.DT

	// 0. Fault injection: resolve this step's perturbations (one time
	// comparison when the injector is attached but idle, one pointer
	// comparison when absent).
	inj := e.cfg.Injector
	injActive := false
	if inj != nil {
		injActive = inj.BeginStep(now)
		// The slew scale must be *restored* once a VRSlew window ends,
		// but an idle injector must not pay a store per step — the
		// restore happens once, on the first idle step after an active
		// one (slewDirty).
		if injActive {
			e.cfg.GlobalVR.SetSlewScale(inj.SlewScale())
			e.slewDirty = true
		} else if e.slewDirty {
			e.cfg.GlobalVR.SetSlewScale(1)
			e.slewDirty = false
		}
	}

	// 1. Global rail.
	vglobal := e.cfg.GlobalVR.Step(now, dt)

	// 2. Power supply network: transport delay + IR droop from the
	// previous step's current draw.
	vrail := e.cfg.PSN.Step(vglobal)
	vrail = e.cfg.Droop.Apply(vrail, e.lastTotal)
	if injActive {
		vrail = inj.Rail(vrail)
	}

	// 3. Domains and components.
	total := 0.0
	if e.cfg.TrackComponents {
		e.cfg.Recorder.RecordComponent("voltage:rail", vrail)
	}
	for i, s := range e.cfg.Slots {
		var vdom float64
		if injActive && inj.Silenced(s.Domain.Name()) {
			vdom = s.Domain.StepSilent(now, dt)
		} else {
			vdom = s.Domain.Step(now, dt, vrail)
		}
		res := s.Comp.Step(now, dt, vdom)
		total += res.Power
		if e.cfg.TrackComponents {
			e.cfg.Recorder.RecordComponent(s.Comp.Name(), res.Power)
			e.cfg.Recorder.RecordComponent("voltage:"+s.Domain.Name(), vdom)
		}
		if e.obsBuf != nil {
			e.obsBuf[i].Power = res.Power
			e.obsBuf[i].Voltage = vdom
		}
	}

	// The global regulator's conversion loss is package power too: it
	// flows through the same pins (zero with the default lossless
	// configuration).
	total += e.cfg.GlobalVR.Loss(total)

	// 4. Sensing path. A dropped sample never reaches the sensor (the
	// filter holds its state) and ages the reading; a perturbed sample
	// goes through like a real one — a stuck ADC still "delivers".
	if injActive {
		if sensed, ok := inj.Sense(total); ok {
			e.cfg.Sensor.Push(sensed)
			e.lastGoodSense = now
		}
	} else {
		e.cfg.Sensor.Push(total)
		e.lastGoodSense = now
	}

	// 5. Global control, then the safety clamp — the clamp runs last and
	// re-commands every engaged step, so no controller command can
	// supersede it.
	if e.cfg.Global != nil {
		e.cfg.Global.StepSensed(now, e.cfg.Sensor.Read(), now-e.lastGoodSense, e.cfg.GlobalVR)
	}
	if e.cfg.Clamp != nil {
		engaged := e.cfg.Clamp.Step(now, total, e.cfg.GlobalVR)
		if e.clampHeld && !engaged && e.cfg.Global != nil {
			// Release edge: restart the PID so windup accumulated while
			// the override poisoned the loop doesn't drive the recovery.
			e.cfg.Global.NotifyOverrideRelease()
		}
		e.clampHeld = engaged
	}

	e.cfg.Recorder.Record(total)
	e.lastTotal = total
	e.steps++
	if e.cfg.Observer != nil {
		e.cfg.Observer.ObserveStep(now, total, e.obsBuf)
	}

	// 6. Software supervision (OS timescale).
	if e.cfg.Supervisor != nil && now >= e.nextSup {
		e.cfg.Supervisor.Tick(now, e)
		e.nextSup = now + e.cfg.Supervisor.Period()
		e.supTicks++
	}
}

// SupervisorTicks reports how many supervision passes have run.
func (e *Engine) SupervisorTicks() int64 { return e.supTicks }

// Steps reports how many engine steps have executed since construction
// or the last Reset.
func (e *Engine) Steps() int64 { return e.steps }

// LastTotalPower returns the package power drawn on the most recent
// step (telemetry for supervisors).
func (e *Engine) LastTotalPower() float64 { return e.lastTotal }

func (e *Engine) allDone() bool {
	for _, s := range e.cfg.Slots {
		if !s.Comp.Done() {
			return false
		}
	}
	return true
}

// Now returns the current simulated time.
func (e *Engine) Now() sim.Time { return e.now }

// Recorder returns the engine's trace recorder.
func (e *Engine) Recorder() *trace.Recorder { return e.cfg.Recorder }

// Sensor returns the package power sensor (fault injection, tests).
func (e *Engine) Sensor() *vr.Sensor { return e.cfg.Sensor }

// GlobalController returns the level-1 controller, or nil for the
// fixed-voltage baseline (dynamic retargeting, tests).
func (e *Engine) GlobalController() *core.Global { return e.cfg.Global }

// Slots exposes the engine's component slots (for priority experiments
// and inspection).
func (e *Engine) Slots() []Slot { return e.cfg.Slots }

// Domain returns the named domain controller, or nil.
func (e *Engine) Domain(name string) *core.Domain {
	for _, s := range e.cfg.Slots {
		if s.Domain.Name() == name {
			return s.Domain
		}
	}
	return nil
}

// Component returns the named component, or nil.
func (e *Engine) Component(name string) sim.Component {
	for _, s := range e.cfg.Slots {
		if s.Comp.Name() == name {
			return s.Comp
		}
	}
	return nil
}

// Reset rewinds the engine and everything it owns for another run.
func (e *Engine) Reset() {
	e.now = 0
	e.lastTotal = 0
	e.cfg.GlobalVR.Reset()
	e.cfg.Sensor.Reset()
	e.cfg.PSN.Reset()
	if e.cfg.Global != nil {
		e.cfg.Global.Reset()
	}
	for _, s := range e.cfg.Slots {
		s.Domain.Reset()
		if r, ok := s.Comp.(sim.Resetter); ok {
			r.Reset()
		}
	}
	e.cfg.Recorder.Reset()
	e.supTicks = 0
	e.steps = 0
	e.lastGoodSense = 0
	e.clampHeld = false
	e.slewDirty = false
	if e.cfg.Supervisor != nil {
		e.nextSup = e.cfg.Supervisor.Period()
	}
	if e.cfg.Injector != nil {
		e.cfg.Injector.Reset()
	}
	if e.cfg.Clamp != nil {
		e.cfg.Clamp.Reset()
	}
}

// Injector returns the attached fault injector, or nil.
func (e *Engine) Injector() *fault.Injector { return e.cfg.Injector }

// Clamp returns the attached package safety clamp, or nil.
func (e *Engine) Clamp() *core.Clamp { return e.cfg.Clamp }
