package sched

import (
	"math"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/pid"
	"hcapp/internal/psn"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

// cubicLoad is a minimal component drawing k·V³ with a fixed work pool.
type cubicLoad struct {
	name   string
	k      float64
	work   float64
	done   float64
	doneAt sim.Time
	rate   float64 // work per second
}

func newCubicLoad(name string, k, work, rate float64) *cubicLoad {
	return &cubicLoad{name: name, k: k, work: work, rate: rate, doneAt: -1}
}

func (c *cubicLoad) Name() string { return c.name }
func (c *cubicLoad) Step(now sim.Time, dt sim.Time, vdd float64) sim.StepResult {
	if c.Done() {
		return sim.StepResult{Power: 0.1}
	}
	w := c.rate * sim.Seconds(dt) * vdd
	c.done += w
	if c.Done() && c.doneAt < 0 {
		c.doneAt = now
	}
	return sim.StepResult{Power: c.k * vdd * vdd * vdd, Work: w}
}
func (c *cubicLoad) Done() bool { return c.work > 0 && c.done >= c.work }
func (c *cubicLoad) Progress() float64 {
	if c.work <= 0 {
		return 0
	}
	return math.Min(1, c.done/c.work)
}
func (c *cubicLoad) CompletionTime() sim.Time { return c.doneAt }
func (c *cubicLoad) Reset()                   { c.done = 0; c.doneAt = -1 }

const dt = 100 * sim.Nanosecond

func testParts(t *testing.T, withGlobal bool, work float64) (*Engine, *cubicLoad) {
	t.Helper()
	gvrCfg := vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 150, SlewRate: 5e6}
	gvr := vr.MustRegulator(gvrCfg)
	sensor := vr.MustSensor(vr.SensorConfig{Delay: 60, FilterTau: 200}, dt)
	line := psn.MustDelayLine(75, dt, 0.95)
	var global *core.Global
	if withGlobal {
		global = core.MustGlobal(core.GlobalConfig{
			Period:      sim.Microsecond,
			TargetPower: 80,
			PID: pid.Config{
				KP: 0.006, KI: 2500, FeedForward: 0.95,
				OutMin: 0.6, OutMax: 1.2, OverGain: 6,
			},
		})
	}
	domCfg := config.DomainConfig{
		Scale: 1.0, VMin: 0.6, VMax: 1.2,
		VR: vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 130, SlewRate: 5e6},
	}
	dom := core.MustDomain("load", domCfg)
	load := newCubicLoad("load", 80/(0.95*0.95*0.95), work, 1e6)
	rec := trace.MustRecorder(dt, false)
	eng := MustNew(Config{
		DT:       dt,
		GlobalVR: gvr,
		Sensor:   sensor,
		PSN:      line,
		Global:   global,
		Slots:    []Slot{{Domain: dom, Comp: load}},
		Recorder: rec,
	})
	return eng, load
}

func TestNewValidation(t *testing.T) {
	gvr := vr.MustRegulator(vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95})
	sensor := vr.MustSensor(vr.SensorConfig{}, dt)
	line := psn.MustDelayLine(0, dt, 0.95)
	rec := trace.MustRecorder(dt, false)
	dom := core.MustDomain("x", config.DomainConfig{
		Scale: 1, VMin: 0.6, VMax: 1.2,
		VR: vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95},
	})
	load := newCubicLoad("x", 1, 0, 1)
	ok := Config{DT: dt, GlobalVR: gvr, Sensor: sensor, PSN: line,
		Slots: []Slot{{Domain: dom, Comp: load}}, Recorder: rec}

	if _, err := New(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero dt", func(c *Config) { c.DT = 0 }},
		{"nil vr", func(c *Config) { c.GlobalVR = nil }},
		{"nil sensor", func(c *Config) { c.Sensor = nil }},
		{"nil psn", func(c *Config) { c.PSN = nil }},
		{"no slots", func(c *Config) { c.Slots = nil }},
		{"nil recorder", func(c *Config) { c.Recorder = nil }},
		{"incomplete slot", func(c *Config) { c.Slots = []Slot{{}} }},
	}
	for _, c := range cases {
		cfg := ok
		c.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFixedVoltageHoldsRail(t *testing.T) {
	eng, _ := testParts(t, false, 0)
	eng.RunFor(50 * sim.Microsecond)
	rec := eng.Recorder()
	// At a fixed 0.95 V rail the cubic load draws exactly 80 W.
	if got := rec.AvgPower(); math.Abs(got-80) > 1 {
		t.Fatalf("fixed-voltage avg power = %g, want ≈80", got)
	}
	// And power variance must be essentially zero.
	if maxP := rec.MaxWindowAvg(dt); maxP > 81 {
		t.Fatalf("fixed rail fluctuated: max %g", maxP)
	}
}

func TestRunStopsOnCompletion(t *testing.T) {
	// Work sized so completion happens at ~1 ms (rate·V = 0.95e6/s).
	eng, load := testParts(t, false, 950)
	res := eng.Run(10 * sim.Millisecond)
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Duration >= 2*sim.Millisecond {
		t.Fatalf("run dragged to %s", sim.FormatTime(res.Duration))
	}
	ct, ok := res.Completion["load"]
	if !ok {
		t.Fatal("completion time missing")
	}
	if ct != load.CompletionTime() {
		t.Fatal("completion time mismatch")
	}
}

func TestRunHitsDeadline(t *testing.T) {
	eng, _ := testParts(t, false, 1e12) // unreachable work
	res := eng.Run(1 * sim.Millisecond)
	if res.Completed {
		t.Fatal("impossible work completed")
	}
	if res.Duration < 1*sim.Millisecond {
		t.Fatalf("stopped early at %s", sim.FormatTime(res.Duration))
	}
}

func TestRunForExactDuration(t *testing.T) {
	eng, _ := testParts(t, false, 0)
	eng.RunFor(123 * sim.Microsecond)
	if eng.Now() != 123*sim.Microsecond {
		t.Fatalf("Now = %s", sim.FormatTime(eng.Now()))
	}
	if eng.Recorder().Steps() != 1230 {
		t.Fatalf("steps = %d", eng.Recorder().Steps())
	}
}

func TestGlobalControlDrivesPowerToTarget(t *testing.T) {
	eng, _ := testParts(t, true, 0)
	// Load draws 80 W at 0.95 V and the target is 80 W: the controller
	// should hold the rail near 0.95 and power near 80.
	eng.RunFor(200 * sim.Microsecond)
	rec := eng.Recorder()
	// Skip the startup transient by averaging the second half.
	pts := rec.Series(10 * sim.Microsecond)
	tail := pts[len(pts)/2:]
	sum := 0.0
	for _, p := range tail {
		sum += p.P
	}
	avg := sum / float64(len(tail))
	if math.Abs(avg-80) > 4 {
		t.Fatalf("controlled power = %g, want ≈80", avg)
	}
}

func TestControlCyclesCounted(t *testing.T) {
	eng, _ := testParts(t, true, 0)
	res := eng.Run(10 * sim.Microsecond)
	if res.ControlCycles != 10 {
		t.Fatalf("control cycles = %d, want 10", res.ControlCycles)
	}
}

func TestEngineAccessors(t *testing.T) {
	eng, load := testParts(t, false, 0)
	if eng.Domain("load") == nil {
		t.Fatal("Domain lookup failed")
	}
	if eng.Domain("nope") != nil {
		t.Fatal("unknown domain found")
	}
	if eng.Component("load") != sim.Component(load) {
		t.Fatal("Component lookup failed")
	}
	if eng.Component("nope") != nil {
		t.Fatal("unknown component found")
	}
	if len(eng.Slots()) != 1 {
		t.Fatal("Slots length")
	}
}

func TestResetReproducesRun(t *testing.T) {
	eng, _ := testParts(t, true, 500)
	res1 := eng.Run(5 * sim.Millisecond)
	avg1 := eng.Recorder().AvgPower()
	eng.Reset()
	if eng.Now() != 0 || eng.Recorder().Steps() != 0 {
		t.Fatal("reset incomplete")
	}
	res2 := eng.Run(5 * sim.Millisecond)
	avg2 := eng.Recorder().AvgPower()
	if res1.Duration != res2.Duration {
		t.Fatalf("durations diverged: %d vs %d", res1.Duration, res2.Duration)
	}
	if math.Abs(avg1-avg2) > 1e-9 {
		t.Fatalf("avg power diverged: %g vs %g", avg1, avg2)
	}
}

func TestDroopReducesDeliveredVoltage(t *testing.T) {
	mk := func(r float64) float64 {
		gvr := vr.MustRegulator(vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95})
		sensor := vr.MustSensor(vr.SensorConfig{}, dt)
		line := psn.MustDelayLine(0, dt, 0.95)
		dom := core.MustDomain("load", config.DomainConfig{
			Scale: 1, VMin: 0.4, VMax: 1.2,
			VR: vr.RegulatorConfig{VMin: 0.4, VMax: 1.2, VInit: 0.95},
		})
		load := newCubicLoad("load", 100, 0, 1)
		rec := trace.MustRecorder(dt, false)
		eng := MustNew(Config{
			DT: dt, GlobalVR: gvr, Sensor: sensor, PSN: line,
			Droop: psn.Droop{R: r},
			Slots: []Slot{{Domain: dom, Comp: load}}, Recorder: rec,
		})
		eng.RunFor(10 * sim.Microsecond)
		return rec.AvgPower()
	}
	if noDroop, withDroop := mk(0), mk(0.001); withDroop >= noDroop {
		t.Fatalf("droop did not reduce power: %g vs %g", withDroop, noDroop)
	}
}

func TestVoltageTracking(t *testing.T) {
	gvr := vr.MustRegulator(vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95})
	sensor := vr.MustSensor(vr.SensorConfig{}, dt)
	line := psn.MustDelayLine(0, dt, 0.95)
	dom := core.MustDomain("load", config.DomainConfig{
		Scale: 0.75, VMin: 0.5, VMax: 1.0,
		VR: vr.RegulatorConfig{VMin: 0.5, VMax: 1.0, VInit: 0.7125},
	})
	load := newCubicLoad("load", 50, 0, 1)
	rec := trace.MustRecorder(dt, true)
	eng := MustNew(Config{
		DT: dt, GlobalVR: gvr, Sensor: sensor, PSN: line,
		Slots:           []Slot{{Domain: dom, Comp: load}},
		Recorder:        rec,
		TrackComponents: true,
	})
	eng.RunFor(20 * sim.Microsecond)
	rail := rec.ComponentSeries("voltage:rail", sim.Microsecond)
	if len(rail) == 0 {
		t.Fatal("no rail voltage series recorded")
	}
	if math.Abs(rail[len(rail)-1].P-0.95) > 0.01 {
		t.Fatalf("rail voltage %g, want ≈0.95", rail[len(rail)-1].P)
	}
	domV := rec.ComponentSeries("voltage:load", sim.Microsecond)
	if len(domV) == 0 {
		t.Fatal("no domain voltage series recorded")
	}
	if math.Abs(domV[len(domV)-1].P-0.7125) > 0.01 {
		t.Fatalf("domain voltage %g, want ≈0.7125", domV[len(domV)-1].P)
	}
}
