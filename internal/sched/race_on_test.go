//go:build race

package sched

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation disables the inlining the idle-path
// overhead contract depends on and dwarfs the quantity being measured.
const raceEnabled = true
