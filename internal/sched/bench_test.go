package sched

import (
	"testing"
	"time"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/fault"
	"hcapp/internal/pid"
	"hcapp/internal/psn"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

// benchEngine builds the one-domain benchmark engine, optionally with
// an injector attached.
func benchEngine(inj *fault.Injector) *Engine {
	gvr := vr.MustRegulator(vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 150, SlewRate: 5e6})
	sensor := vr.MustSensor(vr.SensorConfig{Delay: 60, FilterTau: 200}, dt)
	line := psn.MustDelayLine(75, dt, 0.95)
	global := core.MustGlobal(core.GlobalConfig{
		Period:      sim.Microsecond,
		TargetPower: 80,
		PID: pid.Config{
			KP: 0.006, KI: 2500, FeedForward: 0.95,
			OutMin: 0.6, OutMax: 1.2, OverGain: 6,
		},
	})
	dom := core.MustDomain("load", config.DomainConfig{
		Scale: 1.0, VMin: 0.6, VMax: 1.2,
		VR: vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 130, SlewRate: 5e6},
	})
	load := newCubicLoad("load", 80/(0.95*0.95*0.95), 0, 1e6)
	rec := trace.MustRecorder(dt, false)
	return MustNew(Config{
		DT: dt, GlobalVR: gvr, Sensor: sensor, PSN: line, Global: global,
		Slots:    []Slot{{Domain: dom, Comp: load}},
		Recorder: rec,
		Injector: inj,
	})
}

func BenchmarkStepNoInjector(b *testing.B) {
	eng := benchEngine(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.now += dt
		eng.step()
	}
}

func BenchmarkStepIdleInjector(b *testing.B) {
	eng := benchEngine(fault.MustNew(fault.Plan{Name: "healthy", Seed: 42}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.now += dt
		eng.step()
	}
}

func BenchmarkStepActiveInjector(b *testing.B) {
	eng := benchEngine(fault.MustNew(fault.Plan{Name: "noisy", Seed: 42, Events: []fault.Event{
		{Class: fault.SensorNoise, Start: 0, End: 1 << 60, Param: 3},
	}}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.now += dt
		eng.step()
	}
}

// TestFaultInjectionStepOverhead is the ISSUE's no-fault-path cost
// guard: an attached-but-idle injector may not slow the engine step by
// more than 2% versus no injector at all (the idle path is one cached
// time comparison). Both variants run on the SAME engine object with
// the injector swapped in and out between trials: two separately-built
// engines differ in heap layout, and at ~30 ns/step that alignment
// jitter alone exceeds the 2% margin. Timing noise is suppressed by
// taking the best of several interleaved trials — the minimum is the
// run least disturbed by the scheduler, which is the quantity the
// contract is about.
func TestFaultInjectionStepOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation disables the inlining the contract measures")
	}
	const steps = 200_000
	const trials = 9
	inj := fault.MustNew(fault.Plan{Name: "healthy", Seed: 42})
	eng := benchEngine(inj)
	run := func(with *fault.Injector) time.Duration {
		eng.cfg.Injector = with
		eng.Reset() // keeps trace capacity: no slice growth in the timed loop
		start := time.Now()
		for i := 0; i < steps; i++ {
			eng.now += dt
			eng.step()
		}
		return time.Since(start)
	}
	// Warm-up pass sizes the trace buffers and faults in the code.
	run(nil)
	run(inj)
	// A 2% budget is tight enough that a co-scheduled test package (the
	// full suite runs packages in parallel) can push a whole round over
	// it; a real regression is systematic, so only consistent failure
	// across independent rounds counts.
	var bare, idle time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		bare, idle = time.Duration(1<<62-1), time.Duration(1<<62-1)
		// Interleave paired trials so drift (thermal, scheduler) hits
		// both variants equally.
		for trial := 0; trial < trials; trial++ {
			if d := run(nil); d < bare {
				bare = d
			}
			if d := run(inj); d < idle {
				idle = d
			}
		}
		if idle <= bare+bare/50 { // within +2%
			t.Logf("bare %v, idle-injector %v (%.2f%%)", bare, idle,
				100*(float64(idle)/float64(bare)-1))
			return
		}
		t.Logf("round %d over budget (bare %v, idle %v); re-measuring", attempt, bare, idle)
	}
	t.Fatalf("idle injector step cost %v exceeds 1.02× bare %v in every round", idle, bare)
}
