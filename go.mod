module hcapp

go 1.22
