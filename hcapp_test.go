package hcapp_test

import (
	"strings"
	"testing"

	"hcapp"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := hcapp.DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestSchemeConstructors(t *testing.T) {
	if s := hcapp.HCAPPScheme(); s.Kind != hcapp.HCAPP || s.ControlPeriod != hcapp.Microsecond {
		t.Fatalf("HCAPPScheme = %+v", s)
	}
	if s := hcapp.RAPLLikeScheme(); s.ControlPeriod != 100*hcapp.Microsecond {
		t.Fatalf("RAPLLikeScheme = %+v", s)
	}
	if s := hcapp.SWLikeScheme(); s.ControlPeriod != 10*hcapp.Millisecond {
		t.Fatalf("SWLikeScheme = %+v", s)
	}
	if s := hcapp.FixedVoltageScheme(0.95); s.Kind != hcapp.FixedVoltage || s.FixedV != 0.95 {
		t.Fatalf("FixedVoltageScheme = %+v", s)
	}
}

func TestLimits(t *testing.T) {
	fast := hcapp.PackagePinLimit()
	if fast.Watts != 100 || fast.Window != 20*hcapp.Microsecond {
		t.Fatalf("fast limit %+v", fast)
	}
	slow := hcapp.OffPackageVRLimit()
	if slow.Window != hcapp.Millisecond {
		t.Fatalf("slow limit %+v", slow)
	}
	if hcapp.TargetPowerFor(fast) >= hcapp.TargetPowerFor(slow) {
		t.Fatal("fast target must carry a larger guardband")
	}
}

func TestSuiteAndLookup(t *testing.T) {
	if got := len(hcapp.Suite()); got != 8 {
		t.Fatalf("suite size %d", got)
	}
	c, err := hcapp.ComboByName("Hi-Hi")
	if err != nil || c.Name != "Hi-Hi" {
		t.Fatalf("ComboByName: %+v, %v", c, err)
	}
}

func TestTables(t *testing.T) {
	if !strings.Contains(hcapp.Table1(), "147-617") {
		t.Fatal("Table1 content")
	}
	if !hcapp.Table1Feasible() {
		t.Fatal("Table1 infeasible")
	}
	if !strings.Contains(hcapp.Table3(), "Modeled") {
		t.Fatal("Table3 content")
	}
	if total := hcapp.DelayBudget().Total(); total.Max != 617 {
		t.Fatalf("DelayBudget total %+v", total)
	}
}

func TestPriorityFor(t *testing.T) {
	p := hcapp.PriorityFor("sha")
	if p["sha"] != 1.0 || p["cpu"] != 0.9 {
		t.Fatalf("PriorityFor = %v", p)
	}
}

func TestBuildAndRunDirect(t *testing.T) {
	cfg := hcapp.DefaultConfig()
	combo, err := hcapp.ComboByName("Low-Low")
	if err != nil {
		t.Fatal(err)
	}
	sizing, err := hcapp.SizeWork(cfg, combo, 0.95, 1*hcapp.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
		Scheme:      hcapp.HCAPPScheme(),
		TargetPower: hcapp.TargetPowerFor(hcapp.PackagePinLimit()),
		CPUWork:     sizing.CPUWork,
		GPUWork:     sizing.GPUWork,
		AccelWorkGB: sizing.AccelGB,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Engine.Run(5 * hcapp.Millisecond)
	if !res.Completed {
		t.Fatal("direct run did not complete")
	}
	if sys.Engine.Recorder().AvgPower() <= 0 {
		t.Fatal("no power recorded")
	}
}

func TestEvaluatorThroughPublicAPI(t *testing.T) {
	ev := hcapp.NewEvaluator().WithTargetDur(1 * hcapp.Millisecond)
	combo, err := hcapp.ComboByName("Mid-Mid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.Run(hcapp.RunSpec{
		Combo:  combo,
		Scheme: hcapp.HCAPPScheme(),
		Limit:  hcapp.PackagePinLimit(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PPE <= 0 || res.MaxWindowPower <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}
