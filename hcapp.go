// Package hcapp is a pure-Go reproduction of HCAPP — Heterogeneous
// Constant Average Power Processing (Straube et al., ICPP 2020) — a
// decentralized, hardware-speed power-control hierarchy for
// heterogeneous 2.5D integrated systems, together with the full
// co-simulated evaluation platform the paper used: an 8-core CPU
// chiplet, a 15-SM GPU chiplet, a SHA accelerator chiplet, voltage
// regulator and power-supply-network models, synthetic PARSEC/Rodinia
// workload proxies, and the RAPL-like / software-like baselines.
//
// # Quick start
//
//	ev := hcapp.NewEvaluator()
//	combo, _ := hcapp.ComboByName("Hi-Hi")
//	res, _ := ev.Run(hcapp.RunSpec{
//		Combo:  combo,
//		Scheme: hcapp.HCAPPScheme(),
//		Limit:  hcapp.PackagePinLimit(),
//	})
//	fmt.Printf("PPE %.1f%%, max window power %.1f W\n", 100*res.PPE, res.MaxWindowPower)
//
// Figures and tables from the paper regenerate through the Evaluator's
// Fig4..Fig10 methods, the Table helpers, and the cmd/hcappsim binary.
//
// The architecture follows the paper's three control levels: a global
// PID voltage controller holding the package power target (Eq. 1–2),
// per-chiplet domain controllers that normalize the rail and expose the
// software priority register (§3.2), and per-unit local controllers
// that shift power toward the units converting it into work (§3.3).
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package hcapp

import (
	"io"

	"hcapp/internal/config"
	"hcapp/internal/energy"
	"hcapp/internal/experiment"
	"hcapp/internal/psn"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/workload"
)

// Core configuration and result types. These are aliases of the
// implementation types so the whole evaluation surface is reachable
// from the public package.
type (
	// SystemConfig is the full simulated 2.5D package configuration
	// (Table 2 machine parameters, power models, delivery network).
	SystemConfig = config.SystemConfig
	// Scheme selects a power-control scheme (fixed voltage, HCAPP,
	// RAPL-like, SW-like).
	Scheme = config.Scheme
	// SchemeKind enumerates the scheme families.
	SchemeKind = config.SchemeKind
	// PowerLimit is a maximum power over a sliding time window.
	PowerLimit = config.PowerLimit
	// Combo is a Table 3 benchmark combination.
	Combo = experiment.Combo
	// Evaluator runs and caches experiment simulations.
	Evaluator = experiment.Evaluator
	// RunSpec identifies one simulation run.
	RunSpec = experiment.RunSpec
	// RunResult carries a run's power and completion metrics.
	RunResult = experiment.RunResult
	// Matrix is a rendered figure: one value per (series, combo).
	Matrix = experiment.Matrix
	// ScalingConfig parameterizes the chiplet-count scaling sweep.
	ScalingConfig = experiment.ScalingConfig
	// ScalingResult is the scaling sweep outcome.
	ScalingResult = experiment.ScalingResult
	// BuildOptions parameterizes direct system assembly.
	BuildOptions = experiment.BuildOptions
	// System is a fully assembled simulated package.
	System = experiment.System
	// Sizing holds per-component work pools.
	Sizing = experiment.Sizing
	// TracePoint is one sample of a down-sampled power series.
	TracePoint = trace.Point
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// Result is a direct engine run's outcome (duration, completion).
	Result = sched.Result
	// StepObserver receives live per-step engine telemetry (total and
	// per-domain power/voltage) — the hook hcapp-serve publishes
	// metrics through.
	StepObserver = sched.StepObserver
	// DomainSample is one domain's per-step telemetry sample.
	DomainSample = sched.DomainSample
)

// Re-exported time units for building durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Scheme kinds.
const (
	FixedVoltage = config.FixedVoltage
	HCAPP        = config.HCAPP
	RAPLLike     = config.RAPLLike
	SWLike       = config.SWLike
)

// DefaultConfig returns the calibrated evaluation system of the paper's
// §4: 8-core CPU, 15-SM GPU, SHA accelerator, memory domain, 100 W
// class package.
func DefaultConfig() SystemConfig { return config.Default() }

// NewEvaluator returns an evaluator over the default target system.
func NewEvaluator() *Evaluator { return experiment.NewEvaluator() }

// Suite returns the Table 3 heterogeneous test suite.
func Suite() []Combo { return experiment.Suite() }

// ComboByName looks up a Table 3 combination ("Hi-Hi", "Burst-Low", …).
func ComboByName(name string) (Combo, error) { return experiment.ComboByName(name) }

// PackagePinLimit returns the fast power limit: 100 W over 20 µs.
func PackagePinLimit() PowerLimit { return config.PackagePinLimit() }

// OffPackageVRLimit returns the slow power limit: 100 W over 1 ms.
func OffPackageVRLimit() PowerLimit { return config.OffPackageVRLimit() }

// HCAPPScheme returns HCAPP at its 1 µs control period.
func HCAPPScheme() Scheme { return mustScheme(config.HCAPP) }

// RAPLLikeScheme returns the RAPL-like variant (100 µs control period).
func RAPLLikeScheme() Scheme { return mustScheme(config.RAPLLike) }

// SWLikeScheme returns the software-like variant (10 ms control period).
func SWLikeScheme() Scheme { return mustScheme(config.SWLike) }

// FixedVoltageScheme returns the static baseline at the given global
// voltage (the paper's baseline uses 0.95 V).
func FixedVoltageScheme(v float64) Scheme {
	return Scheme{Kind: config.FixedVoltage, FixedV: v}
}

func mustScheme(k config.SchemeKind) Scheme {
	s, err := config.SchemeByKind(k)
	if err != nil {
		panic(err)
	}
	return s
}

// Build assembles a simulated package directly, for callers that want
// to drive the engine themselves (see examples/adversarial).
func Build(cfg SystemConfig, combo Combo, opts BuildOptions) (*System, error) {
	return experiment.Build(cfg, combo, opts)
}

// SizeWork computes per-component work pools sized so the fixed-voltage
// baseline finishes in roughly dur.
func SizeWork(cfg SystemConfig, combo Combo, fixedV float64, dur Time) (Sizing, error) {
	return experiment.SizeWork(cfg, combo, fixedV, dur)
}

// TargetPowerFor returns the calibrated power target (PSPEC) for a
// limit: the limit minus the guardband its window requires.
func TargetPowerFor(limit PowerLimit) float64 { return experiment.TargetPowerFor(limit) }

// PriorityFor returns the §5.3 static software priority register
// settings that prioritize one component ("cpu", "gpu" or "sha").
func PriorityFor(component string) map[string]float64 {
	return experiment.PriorityFor(component)
}

// Runner fans experiment runs over a bounded worker pool. A nil
// *Runner means sequential execution; results are always assembled in
// deterministic spec order, so output is byte-identical at any width.
type Runner = experiment.Runner

// NewRunner builds a parallel run scheduler of the given width
// (workers < 1 selects runtime.NumCPU()).
func NewRunner(workers int) *Runner { return experiment.NewRunner(workers) }

// RunScaling executes the chiplet-count scalability sweep.
func RunScaling(cfg SystemConfig, sc ScalingConfig) (*ScalingResult, error) {
	return experiment.RunScaling(cfg, sc)
}

// RunScalingWith executes the scaling sweep over a runner.
func RunScalingWith(r *Runner, cfg SystemConfig, sc ScalingConfig) (*ScalingResult, error) {
	return experiment.RunScalingWith(r, cfg, sc)
}

// DefaultScalingConfig returns the standard scaling sweep.
func DefaultScalingConfig() ScalingConfig { return experiment.DefaultScalingConfig() }

// Table1 renders the paper's Table 1 control-delay budget.
func Table1() string { return experiment.Table1() }

// Table1Feasible reports whether the round-trip delay budget fits the
// HCAPP control period.
func Table1Feasible() bool { return experiment.Table1Feasible() }

// Table3 renders the paper's Table 3 benchmark combinations.
func Table3() string { return experiment.Table3() }

// DelayBudget exposes the Table 1 model for programmatic use.
func DelayBudget() psn.Budget { return psn.Table1() }

// CentralizedOptions parameterizes the structurally centralized
// comparison controller (see internal/central).
type CentralizedOptions = experiment.CentralizedOptions

// SoftwarePolicyPeriod is the OS control timescale the software policies
// run at.
const SoftwarePolicyPeriod = experiment.SoftwarePolicyPeriod

// Check is one shape assertion from the paper's evaluation.
type Check = experiment.Check

// Failed filters a check list down to failures.
func Failed(checks []Check) []Check { return experiment.Failed(checks) }

// ChipletSpec describes one chiplet of a custom package topology.
type ChipletSpec = experiment.ChipletSpec

// Topology is a custom package layout: any mix of chiplets under one
// global rail and one HCAPP controller.
type Topology = experiment.Topology

// TopologyOptions parameterizes custom package assembly.
type TopologyOptions = experiment.TopologyOptions

// Benchmark is a workload proxy (built-in or custom).
type Benchmark = workload.Benchmark

// WorkloadSpec is the JSON description of a custom benchmark.
type WorkloadSpec = workload.SpecJSON

// BenchmarkByName looks up a built-in workload proxy ("ferret",
// "backprop", …).
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// LoadBenchmarks parses custom benchmark definitions from JSON (see
// workload.SpecJSON for the schema).
func LoadBenchmarks(r io.Reader) ([]Benchmark, error) { return workload.ParseBenchmarks(r) }

// BuildTopology assembles a custom package (see examples/custom).
func BuildTopology(cfg SystemConfig, topo Topology, opts TopologyOptions) (*sched.Engine, error) {
	return experiment.BuildTopology(cfg, topo, opts)
}

// Engine is the co-simulation engine driving a package.
type Engine = sched.Engine

// SeedSweep summarizes headline-metric robustness across workload seeds.
type SeedSweep = experiment.SeedSweep

// RunSeedSweep re-runs the suite under each seed and summarizes the
// headline metrics.
func RunSeedSweep(seeds []int64, limit PowerLimit, dur Time) (*SeedSweep, error) {
	return experiment.RunSeedSweep(seeds, limit, dur)
}

// RunSeedSweepWith runs the seed sweep with the per-seed loop fanned
// over a runner.
func RunSeedSweepWith(r *Runner, seeds []int64, limit PowerLimit, dur Time) (*SeedSweep, error) {
	return experiment.RunSeedSweepWith(r, seeds, limit, dur, false)
}

// ComboSpec is the JSON description of a custom benchmark combination.
type ComboSpec = experiment.ComboSpecJSON

// ParseSuite reads a custom evaluation suite from JSON, resolving
// benchmark names against the built-in registry and the supplied custom
// benchmarks.
func ParseSuite(r io.Reader, custom []Benchmark) ([]Combo, error) {
	return experiment.ParseSuite(r, custom)
}

// Robustness and claim-validation result types.
type (
	// FaultScenario is one sensor-defect case.
	FaultScenario = experiment.FaultScenario
	// FaultResult is a fault-injection outcome.
	FaultResult = experiment.FaultResult
	// RetargetResult validates the §5.2 dynamic power-limit change.
	RetargetResult = experiment.RetargetResult
)

// Energy attribution and chargeback (internal/energy, docs/ENERGY.md).
type (
	// EnergyLedger integrates per-unit attributed and ground-truth
	// energy off the StepObserver hook (BuildOptions.TrackEnergy).
	EnergyLedger = energy.Ledger
	// EnergySummary is a ledger snapshot: per-component attributed and
	// true joules plus per-domain totals and uncore.
	EnergySummary = energy.Summary
	// EnergyReport is the attribution-accuracy experiment outcome.
	EnergyReport = experiment.EnergyReport
	// DomainAccuracy grades share-based attribution for one domain.
	DomainAccuracy = energy.DomainAccuracy
)

// RenderEnergyAttribution formats the attribution-accuracy report
// (hcappsim -experiment energy).
func RenderEnergyAttribution(r *EnergyReport) string {
	return experiment.RenderEnergyAttribution(r)
}
