package hcapp_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"hcapp"
)

// buildFixedVoltageSystem assembles the Fig. 5 suite's headline workload
// (Burst-Burst) at a fixed 0.95 V rail with work sized for dur — the
// configuration the adaptive speedup gate is measured on: no global
// controller re-commanding the rail every period, so steady-state
// regions span whole workload phases.
func buildFixedVoltageSystem(tb testing.TB, comboName string, dur hcapp.Time, adaptive bool) *hcapp.System {
	tb.Helper()
	cfg := hcapp.DefaultConfig()
	combo, err := hcapp.ComboByName(comboName)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := hcapp.SizeWork(cfg, combo, 0.95, dur)
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
		Scheme:      hcapp.FixedVoltageScheme(0.95),
		CPUWork:     s.CPUWork,
		GPUWork:     s.GPUWork,
		AccelWorkGB: s.AccelGB,
		Adaptive:    adaptive,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// requireIdenticalTraces compares two completed runs bit for bit.
func requireIdenticalTraces(t *testing.T, label string, f, a *hcapp.System, rf, ra hcapp.Result) {
	t.Helper()
	if rf.Duration != ra.Duration || rf.Completed != ra.Completed {
		t.Fatalf("%s: run outcome diverges: fixed %v/%v adaptive %v/%v",
			label, rf.Duration, rf.Completed, ra.Duration, ra.Completed)
	}
	ft, at := f.Engine.Recorder().Totals(), a.Engine.Recorder().Totals()
	if len(ft) != len(at) {
		t.Fatalf("%s: trace lengths diverge: %d vs %d", label, len(ft), len(at))
	}
	for i := range ft {
		if ft[i] != at[i] {
			t.Fatalf("%s: power trace diverges at step %d: %g vs %g", label, i, ft[i], at[i])
		}
	}
}

// TestAdaptiveMatchesFixedTraces is the whole-package byte-identity
// check: for each workload combo, an adaptive run's power trace must be
// bitwise equal to the fixed-step run's, and the adaptive engine must
// actually have strided (otherwise the equality is vacuous).
func TestAdaptiveMatchesFixedTraces(t *testing.T) {
	const dur = 2 * hcapp.Millisecond
	strided := int64(0)
	for _, name := range []string{"Burst-Burst", "Hi-Hi", "Mid-Mid"} {
		f := buildFixedVoltageSystem(t, name, dur, false)
		a := buildFixedVoltageSystem(t, name, dur, true)
		rf := f.Engine.Run(2 * dur)
		ra := a.Engine.Run(2 * dur)
		requireIdenticalTraces(t, name, f, a, rf, ra)
		strided += a.Engine.StridedSteps()
	}
	if strided == 0 {
		t.Fatal("no combo strided at all — adaptive mode is not engaging")
	}
}

// benchStep is the BENCH_step.json schema: the headline hot-path
// numbers the CI bench stage publishes.
type benchStep struct {
	NsPerStep       float64 `json:"ns_per_step"`
	AllocsPerStep   float64 `json:"allocs_per_step"`
	AdaptiveSpeedup float64 `json:"adaptive_speedup"`
	StridedFraction float64 `json:"strided_fraction"`
	Steps           int64   `json:"steps"`
}

// TestAdaptiveSpeedupGate is the headline performance gate: on the
// Fig. 5 suite's Burst-Burst workload at a fixed rail, adaptive
// stepping must complete the identical run at least 5× faster than
// fixed stepping (measured 6–7× on the reference host), the fixed-step
// loop must not allocate in steady state, and the two traces must be
// bit for bit equal. When HCAPP_BENCH_JSON names a path, the measured
// numbers are written there as the CI bench artifact.
func TestAdaptiveSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts both sides of the gate")
	}
	const dur = 16 * hcapp.Millisecond
	fixed := buildFixedVoltageSystem(t, "Burst-Burst", dur, false)
	adaptive := buildFixedVoltageSystem(t, "Burst-Burst", dur, true)

	// Interleaved best-of-N: Reset is byte-identical (see the sched
	// package's reset audit), so the same two systems are re-run rather
	// than rebuilt, keeping heap layout constant across trials.
	var rf, ra hcapp.Result
	bestFixed, bestAdaptive := time.Duration(1<<62), time.Duration(1<<62)
	var allocsPerStep float64
	for trial := 0; trial < 4; trial++ {
		fixed.Engine.Reset()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		rf = fixed.Engine.Run(2 * dur)
		d := time.Since(start)
		runtime.ReadMemStats(&m1)
		if d < bestFixed {
			bestFixed = d
			// Mallocs is monotonic (GC never decrements it), so the delta
			// is exactly the allocation count of the timed run. The
			// once-per-run Result/Completion allocations are amortized
			// over ~10^5 steps and must round to zero per step.
			allocsPerStep = float64(m1.Mallocs-m0.Mallocs) / float64(fixed.Engine.Steps())
		}
		adaptive.Engine.Reset()
		start = time.Now()
		ra = adaptive.Engine.Run(2 * dur)
		if d := time.Since(start); d < bestAdaptive {
			bestAdaptive = d
		}
	}
	requireIdenticalTraces(t, "Burst-Burst", fixed, adaptive, rf, ra)

	steps := fixed.Engine.Steps()
	out := benchStep{
		NsPerStep:       float64(bestFixed.Nanoseconds()) / float64(steps),
		AllocsPerStep:   allocsPerStep,
		AdaptiveSpeedup: bestFixed.Seconds() / bestAdaptive.Seconds(),
		StridedFraction: float64(adaptive.Engine.StridedSteps()) / float64(adaptive.Engine.Steps()),
		Steps:           steps,
	}
	t.Logf("fixed %v (%.0f ns/step, %.4f allocs/step), adaptive %v: %.1f× speedup, %.1f%% strided",
		bestFixed, out.NsPerStep, out.AllocsPerStep, bestAdaptive,
		out.AdaptiveSpeedup, 100*out.StridedFraction)

	if path := os.Getenv("HCAPP_BENCH_JSON"); path != "" {
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if out.AllocsPerStep > 0.001 {
		t.Errorf("steady-state step loop allocates: %.4f allocs/step, want 0", out.AllocsPerStep)
	}
	if out.AdaptiveSpeedup < 5 {
		t.Errorf("adaptive speedup %.2f× below the 5× gate", out.AdaptiveSpeedup)
	}
}
