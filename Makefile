GO ?= go

.PHONY: ci fmt vet build test race bench serve

## ci: the tier-1 gate — formatting, vet, build, and the race-enabled
## test suite. Run before every push; scripts/ci.sh is the same gate
## for environments without make.
ci: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: telemetry hot paths and the instrumented-engine overhead
## comparison (see bench_test.go).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCounterInc$$|BenchmarkGaugeSet$$|BenchmarkHistogramObserve$$' -benchmem ./internal/telemetry/
	$(GO) test -run '^$$' -bench 'BenchmarkEngineStep' -benchmem .

serve:
	$(GO) run ./cmd/hcapp-serve
