// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations and micro-benchmarks of the hot paths.
//
// Each figure benchmark executes the corresponding experiment end to end
// (workload generation, co-simulation, metric extraction), reports the
// headline numbers as benchmark metrics, and logs the rendered
// paper-style table on the first iteration:
//
//	go test -bench=Fig9 -benchmem -v
//
// The evaluation horizon is reduced from the paper's ~200 ms to 12 ms to
// keep the full harness runnable in minutes; EXPERIMENTS.md records the
// paper-vs-measured comparison produced at this horizon.
package hcapp_test

import (
	"testing"
	"time"

	"hcapp"
	"hcapp/internal/telemetry"
)

// benchDur is the evaluation horizon for figure benchmarks: long enough
// for the 10 ms SW-like controller to act, short enough to iterate.
const benchDur = 12 * hcapp.Millisecond

func newBenchEvaluator() *hcapp.Evaluator {
	return hcapp.NewEvaluator().WithTargetDur(benchDur)
}

func BenchmarkTable1DelayBudget(b *testing.B) {
	feasible := false
	for i := 0; i < b.N; i++ {
		budget := hcapp.DelayBudget()
		feasible = budget.Feasible()
	}
	if !feasible {
		b.Fatal("delay budget infeasible")
	}
	b.Logf("\n%s", hcapp.Table1())
}

func BenchmarkFig1StaticPowerTrace(b *testing.B) {
	combo, err := hcapp.ComboByName("Burst-Burst")
	if err != nil {
		b.Fatal(err)
	}
	var peak float64
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		pts, _, err := ev.Fig1(combo, 100*hcapp.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, p := range pts {
			if p.P > peak {
				peak = p.P
			}
		}
	}
	b.ReportMetric(peak, "peak/avg")
	b.Logf("Fig 1 (%s, static 0.95 V): peak %.2f× average power", combo.Name, peak)
}

func BenchmarkFig2PowerWindows(b *testing.B) {
	combo, err := hcapp.ComboByName("Burst-Burst")
	if err != nil {
		b.Fatal(err)
	}
	windows := []hcapp.Time{20 * hcapp.Microsecond, 1 * hcapp.Millisecond, 10 * hcapp.Millisecond}
	peaks := map[hcapp.Time]float64{}
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		series, _, err := ev.Fig2(combo, windows, 100*hcapp.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range windows {
			m := 0.0
			for _, p := range series[w] {
				if p.P > m {
					m = p.P
				}
			}
			peaks[w] = m
		}
	}
	b.ReportMetric(peaks[windows[0]], "peak20us")
	b.ReportMetric(peaks[windows[1]], "peak1ms")
	b.Logf("Fig 2 peaks/avg: 20µs %.3f, 1ms %.3f, 10ms %.3f",
		peaks[windows[0]], peaks[windows[1]], peaks[windows[2]])
}

// figureBench runs one matrix-producing experiment per iteration and
// reports the named rows' averages as metrics.
func figureBench(b *testing.B, run func(*hcapp.Evaluator) (*hcapp.Matrix, error), metricRows map[string]string) {
	b.Helper()
	var m *hcapp.Matrix
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		var err error
		m, err = run(ev)
		if err != nil {
			b.Fatal(err)
		}
	}
	for row, metric := range metricRows {
		b.ReportMetric(m.RowAvg(row), metric)
	}
	b.Logf("\n%s", m.Render())
}

func BenchmarkFig4MaxPowerFastLimit(b *testing.B) {
	figureBench(b, func(ev *hcapp.Evaluator) (*hcapp.Matrix, error) { return ev.Fig4() },
		map[string]string{"HCAPP": "hcapp-max", "RAPL-like HCAPP": "rapl-max"})
}

func BenchmarkFig5SpeedupFastLimit(b *testing.B) {
	figureBench(b, func(ev *hcapp.Evaluator) (*hcapp.Matrix, error) { return ev.Fig5() },
		map[string]string{"HCAPP": "hcapp-speedup"})
}

// BenchmarkFig5SpeedupParallel is BenchmarkFig5SpeedupFastLimit with
// the runs sharded over a 4-worker runner; compare the two to measure
// the scheduler's speedup on a multi-core host (the rendered matrix is
// byte-identical either way).
func BenchmarkFig5SpeedupParallel(b *testing.B) {
	figureBench(b, func(ev *hcapp.Evaluator) (*hcapp.Matrix, error) {
		return ev.WithRunner(hcapp.NewRunner(4)).Fig5()
	}, map[string]string{"HCAPP": "hcapp-speedup"})
}

func BenchmarkFig6PPEFastLimit(b *testing.B) {
	figureBench(b, func(ev *hcapp.Evaluator) (*hcapp.Matrix, error) { return ev.Fig6() },
		map[string]string{"HCAPP": "hcapp-ppe", "Fixed Voltage": "fixed-ppe"})
}

func BenchmarkFig7MaxPowerSlowLimit(b *testing.B) {
	figureBench(b, func(ev *hcapp.Evaluator) (*hcapp.Matrix, error) { return ev.Fig7() },
		map[string]string{"HCAPP": "hcapp-max", "SW-like HCAPP": "sw-max"})
}

func BenchmarkFig8SpeedupSlowLimit(b *testing.B) {
	figureBench(b, func(ev *hcapp.Evaluator) (*hcapp.Matrix, error) { return ev.Fig8() },
		map[string]string{"HCAPP": "hcapp-speedup", "RAPL-like HCAPP": "rapl-speedup"})
}

func BenchmarkFig9PPESlowLimit(b *testing.B) {
	figureBench(b, func(ev *hcapp.Evaluator) (*hcapp.Matrix, error) { return ev.Fig9() },
		map[string]string{"HCAPP": "hcapp-ppe", "RAPL-like HCAPP": "rapl-ppe", "SW-like HCAPP": "sw-ppe"})
}

func BenchmarkFig10PrioritySpeedup(b *testing.B) {
	figureBench(b, func(ev *hcapp.Evaluator) (*hcapp.Matrix, error) { return ev.Fig10() },
		map[string]string{"CPU": "cpu-speedup", "GPU": "gpu-speedup", "SHA": "sha-speedup"})
}

// BenchmarkAblationAdversarialLocal exercises §3.3.3: the package power
// limit must survive an adversarial accelerator local controller; the
// cost falls on the adversary's neighbours.
func BenchmarkAblationAdversarialLocal(b *testing.B) {
	combo, err := hcapp.ComboByName("Hi-Hi")
	if err != nil {
		b.Fatal(err)
	}
	limit := hcapp.PackagePinLimit()
	var honest, adv hcapp.RunResult
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		honest, err = ev.Run(hcapp.RunSpec{Combo: combo, Scheme: hcapp.HCAPPScheme(), Limit: limit})
		if err != nil {
			b.Fatal(err)
		}
		adv, err = ev.Run(hcapp.RunSpec{Combo: combo, Scheme: hcapp.HCAPPScheme(), Limit: limit, AdversarialAccel: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	if adv.Violated {
		b.Fatal("adversarial local controller broke the limit")
	}
	b.ReportMetric(adv.MaxOverLimit, "adv-max")
	b.ReportMetric(float64(adv.Completion["cpu"])/float64(honest.Completion["cpu"]), "cpu-slowdown")
	b.Logf("adversarial accel: max %.3f× limit (honest %.3f×); cpu completion %.3f× honest",
		adv.MaxOverLimit, honest.MaxOverLimit,
		float64(adv.Completion["cpu"])/float64(honest.Completion["cpu"]))
}

// BenchmarkAblationChipletScaling regenerates the decentralization claim:
// HCAPP's max-power ratio stays flat as chiplet triples multiply, while a
// centralized controller's aggregation latency stretches its period and
// its control quality collapses.
func BenchmarkAblationChipletScaling(b *testing.B) {
	var res *hcapp.ScalingResult
	for i := 0; i < b.N; i++ {
		sc := hcapp.DefaultScalingConfig()
		sc.ChipletCounts = []int{1, 4, 16}
		sc.Dur = 2 * hcapp.Millisecond
		var err error
		res, err = hcapp.RunScaling(hcapp.DefaultConfig(), sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.HCAPPMax, "hcapp-max@16")
	b.ReportMetric(last.CentralMax, "central-max@16")
	b.Logf("\n%s", res.Render())
}

// BenchmarkAblationGuardband sweeps the HCAPP power target against the
// fast limit, exposing the guardband DESIGN.md calls out: higher targets
// buy PPE until window violations appear.
func BenchmarkAblationGuardband(b *testing.B) {
	combo, err := hcapp.ComboByName("Burst-Burst")
	if err != nil {
		b.Fatal(err)
	}
	limit := hcapp.PackagePinLimit()
	cfg := hcapp.DefaultConfig()
	type point struct {
		target, maxOver, ppe float64
	}
	var pts []point
	for i := 0; i < b.N; i++ {
		pts = pts[:0]
		sizing, err := hcapp.SizeWork(cfg, combo, 0.95, 4*hcapp.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for frac := 0.78; frac <= 1.0; frac += 0.04 {
			target := limit.Watts * frac
			sys, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
				Scheme:      hcapp.HCAPPScheme(),
				TargetPower: target,
				CPUWork:     sizing.CPUWork,
				GPUWork:     sizing.GPUWork,
				AccelWorkGB: sizing.AccelGB,
			})
			if err != nil {
				b.Fatal(err)
			}
			sys.Engine.Run(12 * hcapp.Millisecond)
			rec := sys.Engine.Recorder()
			pts = append(pts, point{
				target:  target,
				maxOver: rec.MaxWindowAvg(limit.Window) / limit.Watts,
				ppe:     rec.PPE(limit.Watts),
			})
		}
	}
	for _, p := range pts {
		b.Logf("target %5.1f W: max %.3f× limit, PPE %.3f", p.target, p.maxOver, p.ppe)
	}
	b.ReportMetric(pts[0].ppe, "ppe@0.78")
	b.ReportMetric(pts[len(pts)-1].maxOver, "max@1.00")
}

// BenchmarkEngineStep measures raw co-simulation throughput: one full
// package (25 execution units + delivery network + controllers) per
// engine step.
func BenchmarkEngineStep(b *testing.B) {
	cfg := hcapp.DefaultConfig()
	combo, err := hcapp.ComboByName("Hi-Hi")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
		Scheme:      hcapp.HCAPPScheme(),
		TargetPower: hcapp.TargetPowerFor(hcapp.PackagePinLimit()),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Engine.RunFor(cfg.TimeStep)
	}
}

// newObservedSystem builds the BenchmarkEngineStep system with the
// hcapp-serve style telemetry observer attached: per-domain power and
// voltage gauges, a package power gauge, and a step counter, all on the
// label-cached zero-alloc path.
func newObservedSystem(tb testing.TB) *hcapp.System {
	cfg := hcapp.DefaultConfig()
	combo, err := hcapp.ComboByName("Hi-Hi")
	if err != nil {
		tb.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	obs := &benchObserver{
		steps: reg.Counter("hcapp_sim_steps_total", "Engine steps.", "job").With("bench"),
		pkg:   reg.Gauge("hcapp_package_power_watts", "Package power.", "job").With("bench"),
	}
	powerVec := reg.Gauge("hcapp_domain_power_watts", "Domain power.", "job", "domain")
	voltVec := reg.Gauge("hcapp_domain_voltage_volts", "Domain voltage.", "job", "domain")
	for _, d := range []string{"cpu", "gpu", "sha", "mem"} {
		obs.power = append(obs.power, powerVec.With("bench", d))
		obs.volt = append(obs.volt, voltVec.With("bench", d))
	}
	sys, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
		Scheme:      hcapp.HCAPPScheme(),
		TargetPower: hcapp.TargetPowerFor(hcapp.PackagePinLimit()),
		Observer:    obs,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

type benchObserver struct {
	steps       *telemetry.Counter
	pkg         *telemetry.Gauge
	power, volt []*telemetry.Gauge
}

func (o *benchObserver) ObserveStep(now hcapp.Time, total float64, domains []hcapp.DomainSample) {
	o.steps.Inc()
	o.pkg.Set(total)
	for i := range domains {
		o.power[i].Set(domains[i].Power)
		o.volt[i].Set(domains[i].Voltage)
	}
}

// BenchmarkEngineStepInstrumented is BenchmarkEngineStep with the live
// telemetry observer attached; compare the two to price the hook. The
// budget is < 8% overhead (TestInstrumentedStepOverhead enforces it).
func BenchmarkEngineStepInstrumented(b *testing.B) {
	cfg := hcapp.DefaultConfig()
	sys := newObservedSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Engine.RunFor(cfg.TimeStep)
	}
}

// TestInstrumentedStepOverhead measures instrumented vs uninstrumented
// engine stepping back to back and fails if telemetry costs more than
// 8% — the contract that lets hcapp-serve instrument every job. The
// budget was 5% against the pre-SoA step loop; the loop is now ~40%
// faster, so the hook's unchanged absolute cost (a counter bump plus
// ten gauge stores) is a larger relative share even though instrumented
// stepping is faster than it has ever been.
func TestInstrumentedStepOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates the telemetry ops being priced")
	}
	cfg := hcapp.DefaultConfig()
	combo, err := hcapp.ComboByName("Hi-Hi")
	if err != nil {
		t.Fatal(err)
	}
	base, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
		Scheme:      hcapp.HCAPPScheme(),
		TargetPower: hcapp.TargetPowerFor(hcapp.PackagePinLimit()),
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := newObservedSystem(t)
	const span = 2 * hcapp.Millisecond
	tBase, tInst := pairedStepTime(base, inst, span)
	ratio := tInst.Seconds() / tBase.Seconds()
	t.Logf("uninstrumented %v, instrumented %v, ratio %.3f", tBase, tInst, ratio)
	if ratio > 1.08 {
		t.Errorf("telemetry overhead %.1f%% exceeds the 8%% budget", 100*(ratio-1))
	}
}

// newEnergyTrackedSystem builds the BenchmarkEngineStep system with the
// energy-attribution ledger attached (unit meters on, per-step
// activity-share split and ground-truth integration).
func newEnergyTrackedSystem(tb testing.TB) *hcapp.System {
	cfg := hcapp.DefaultConfig()
	combo, err := hcapp.ComboByName("Hi-Hi")
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
		Scheme:      hcapp.HCAPPScheme(),
		TargetPower: hcapp.TargetPowerFor(hcapp.PackagePinLimit()),
		TrackEnergy: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// BenchmarkEngineStepEnergyLedger is BenchmarkEngineStep with the energy
// ledger attached; compare the two to price per-step attribution. The
// budget is < 8% overhead (TestEnergyLedgerStepOverhead enforces it).
func BenchmarkEngineStepEnergyLedger(b *testing.B) {
	cfg := hcapp.DefaultConfig()
	sys := newEnergyTrackedSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Engine.RunFor(cfg.TimeStep)
	}
}

// TestEnergyLedgerStepOverhead measures energy-tracked vs plain engine
// stepping back to back and fails if the ledger costs more than 8% —
// the contract that lets fleet workers account every job's energy.
// Like TestInstrumentedStepOverhead, the budget is recalibrated against
// the ~40% faster SoA step loop: the ledger's absolute per-step cost is
// unchanged.
func TestEnergyLedgerStepOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates the ledger ops being priced")
	}
	cfg := hcapp.DefaultConfig()
	combo, err := hcapp.ComboByName("Hi-Hi")
	if err != nil {
		t.Fatal(err)
	}
	base, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
		Scheme:      hcapp.HCAPPScheme(),
		TargetPower: hcapp.TargetPowerFor(hcapp.PackagePinLimit()),
	})
	if err != nil {
		t.Fatal(err)
	}
	tracked := newEnergyTrackedSystem(t)
	const span = 2 * hcapp.Millisecond
	tBase, tTracked := pairedStepTime(base, tracked, span)
	ratio := tTracked.Seconds() / tBase.Seconds()
	t.Logf("plain %v, energy-tracked %v, ratio %.3f", tBase, tTracked, ratio)
	if ratio > 1.08 {
		t.Errorf("energy-ledger overhead %.1f%% exceeds the 8%% budget", 100*(ratio-1))
	}
	if tracked.Energy == nil || tracked.Energy.Summary().TotalJ <= 0 {
		t.Error("energy-tracked system integrated no energy")
	}
}

// pairedStepTime times the two systems' stepping in alternating trials
// and returns each one's best — interleaving means scheduler and clock
// drift hit both variants equally, and the minimum is the trial least
// disturbed by either, which is the quantity the overhead contracts are
// about.
func pairedStepTime(a, b *hcapp.System, span hcapp.Time) (bestA, bestB time.Duration) {
	// Warm-up pass faults in code and sizes trace buffers.
	a.Engine.RunFor(span)
	b.Engine.RunFor(span)
	bestA, bestB = time.Duration(1<<62), time.Duration(1<<62)
	for trial := 0; trial < 9; trial++ {
		start := time.Now()
		a.Engine.RunFor(span)
		if d := time.Since(start); d < bestA {
			bestA = d
		}
		start = time.Now()
		b.Engine.RunFor(span)
		if d := time.Since(start); d < bestB {
			bestB = d
		}
	}
	return bestA, bestB
}

// BenchmarkEvaluatorRun measures one full combo simulation at a 1 ms
// horizon (build + run + metrics).
func BenchmarkEvaluatorRun(b *testing.B) {
	combo, err := hcapp.ComboByName("Mid-Mid")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ev := hcapp.NewEvaluator().WithTargetDur(1 * hcapp.Millisecond)
		if _, err := ev.Run(hcapp.RunSpec{
			Combo: combo, Scheme: hcapp.HCAPPScheme(), Limit: hcapp.PackagePinLimit(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLocalControllers compares the level-3 designs: no
// local controllers, the paper's dynamic-IPC pair, and the GPU-CAPP
// dynamic-occupancy alternative (§3.3.1–§3.3.2).
func BenchmarkAblationLocalControllers(b *testing.B) {
	var m *hcapp.Matrix
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		var err error
		m, err = ev.AblationLocalControllers()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.RowAvg("no local controllers"), "no-local")
	b.ReportMetric(m.RowAvg("dynamic IPC (paper)"), "dyn-ipc")
	b.ReportMetric(m.RowAvg("dynamic occupancy"), "dyn-occ")
	b.Logf("\n%s", m.Render())
}

// BenchmarkAblationClocking quantifies the §3.5 guardband tax against
// adaptive clocking.
func BenchmarkAblationClocking(b *testing.B) {
	var m *hcapp.Matrix
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		var err error
		m, err = ev.AblationClocking()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.RowAvg("adaptive clocking"), "adaptive")
	b.ReportMetric(m.RowAvg("guardband 50 mV"), "gb50mV")
	b.Logf("\n%s", m.Render())
}

// BenchmarkExtensionSoftwarePolicies measures the §6 software policies'
// makespan gains on imbalanced work pools.
func BenchmarkExtensionSoftwarePolicies(b *testing.B) {
	var m *hcapp.Matrix
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		var err error
		m, err = ev.ExtensionSoftwarePolicies()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.RowAvg("progress-balancer"), "balancer")
	b.ReportMetric(m.RowAvg("critical-path"), "critpath")
	b.Logf("\n%s", m.Render())
}

// BenchmarkExtensionCentralized measures the structurally centralized
// allocator against HCAPP at the fast limit (§2 made quantitative).
func BenchmarkExtensionCentralized(b *testing.B) {
	var m *hcapp.Matrix
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		var err error
		m, err = ev.ExtensionCentralized(hcapp.PackagePinLimit())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.RowMax("HCAPP"), "hcapp-max")
	b.ReportMetric(m.RowMax("Centralized"), "central-max")
	b.Logf("\n%s", m.Render())
}

// BenchmarkThermalCheck verifies the below-TDP assumption (§3.5) while
// measuring the thermally-instrumented simulation's cost.
func BenchmarkThermalCheck(b *testing.B) {
	var cpu, gpu float64
	var tripped bool
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		var err error
		cpu, gpu, tripped, err = ev.ThermalCheck()
		if err != nil {
			b.Fatal(err)
		}
	}
	if tripped {
		b.Fatal("thermal protection tripped at evaluation power")
	}
	b.ReportMetric(cpu, "peak-cpu-C")
	b.ReportMetric(gpu, "peak-gpu-C")
}

// BenchmarkSeedRobustness re-runs the suite under several workload
// seeds and reports the spread of the headline metrics — the paper's
// single-seed numbers must not be seed artifacts.
func BenchmarkSeedRobustness(b *testing.B) {
	var sw *hcapp.SeedSweep
	for i := 0; i < b.N; i++ {
		var err error
		sw, err = hcapp.RunSeedSweep([]int64{1, 2, 3, 42}, hcapp.OffPackageVRLimit(), 4*hcapp.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	if sw.Violations != 0 {
		b.Fatalf("HCAPP violated under %d seeds", sw.Violations)
	}
	b.Logf("\n%s", sw.Render())
}

// BenchmarkRobustnessSensorFaults characterizes HCAPP under sensor
// defects: an optimistic sensor over-drives the package (the documented
// failure mode), a pessimistic one wastes PPE, a healthy one holds the
// limit.
func BenchmarkRobustnessSensorFaults(b *testing.B) {
	combo, err := hcapp.ComboByName("Mid-Mid")
	if err != nil {
		b.Fatal(err)
	}
	var healthy, optimistic float64
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		results, err := ev.RunFaultInjection(combo)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			switch r.Scenario.Name {
			case "healthy":
				healthy = r.MaxOverLimit
			case "optimistic -25%":
				optimistic = r.MaxOverLimit
			}
		}
	}
	b.ReportMetric(healthy, "healthy-max")
	b.ReportMetric(optimistic, "optimistic-max")
}

// BenchmarkAblationVREfficiency quantifies how global-VR conversion
// losses eat the power-target guardband.
func BenchmarkAblationVREfficiency(b *testing.B) {
	var m *hcapp.Matrix
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		var err error
		m, err = ev.AblationVREfficiency()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.RowMax("lossless (paper)"), "lossless-max")
	b.ReportMetric(m.RowMax("90% efficient"), "eff90-max")
	b.Logf("\n%s", m.Render())
}

// BenchmarkDynamicRetarget validates the §5.2 claim that the power
// target can change mid-run without PID retuning: each half of the run
// must track its own target with the same constants.
func BenchmarkDynamicRetarget(b *testing.B) {
	combo, err := hcapp.ComboByName("Mid-Mid")
	if err != nil {
		b.Fatal(err)
	}
	var first, second float64
	for i := 0; i < b.N; i++ {
		ev := newBenchEvaluator()
		r, err := ev.RunRetarget(combo)
		if err != nil {
			b.Fatal(err)
		}
		first, second = r.FirstAvg, r.SecondAvg
	}
	b.ReportMetric(first, "first-avg-W")
	b.ReportMetric(second, "second-avg-W")
}
