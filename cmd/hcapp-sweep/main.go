// Command hcapp-sweep runs the chiplet-count scalability sweep: the same
// workload replicated across 1..N compute-chiplet triples, controlled
// either by HCAPP (whose 1 µs control period is set by power-delivery
// physics and independent of system size) or by a centralized controller
// whose period grows with the metric-aggregation latency of the nodes it
// must poll (paper §1 problem 3, §2).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hcapp/internal/buildinfo"
	"hcapp/internal/cluster"
	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/noc"
	"hcapp/internal/sim"
)

func main() {
	counts := flag.String("counts", "1,2,4,8", "comma-separated chiplet-triple counts")
	combo := flag.String("combo", "Burst-Burst", "workload combination")
	durMS := flag.Float64("dur", 3, "run length per point, milliseconds")
	msgNS := flag.Int64("msg-ns", 120, "per-message serialization on the collection network, ns")
	tree := flag.Bool("tree", false, "use an aggregation tree instead of a shared bus")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (output is identical at any width)")
	coordinator := flag.String("coordinator", "", "offload sweep cells to the fleet coordinator at this URL (rendered output is identical)")
	tenant := flag.String("tenant", "", "fleet tenant id for rate limiting with -coordinator")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "hcapp-sweep")
		return
	}

	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "hcapp-sweep: -workers must be >= 1, got %d\n", *workers)
		flag.Usage()
		os.Exit(2)
	}

	sc := experiment.DefaultScalingConfig()
	if *coordinator != "" {
		fleet, err := cluster.NewClient(*coordinator)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hcapp-sweep:", err)
			os.Exit(2)
		}
		fleet.Tenant = *tenant
		if err := fleet.Ping(context.Background(), 10*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "hcapp-sweep:", err)
			os.Exit(2)
		}
		sc.Cell = fleet.ScalingCellFunc()
	}
	sc.Dur = sim.Time(*durMS * float64(sim.Millisecond))
	if *tree {
		sc.Network = noc.DefaultTree()
	}
	sc.Network.MsgSerialization = sim.Time(*msgNS)

	c, err := experiment.ComboByName(*combo)
	if err != nil {
		fatal(err)
	}
	sc.Combo = c

	sc.ChipletCounts = nil
	for _, part := range strings.Split(*counts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad count %q: %w", part, err))
		}
		sc.ChipletCounts = append(sc.ChipletCounts, n)
	}

	res, err := experiment.RunScalingWith(experiment.NewRunner(*workers), config.Default(), sc)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcapp-sweep:", err)
	os.Exit(1)
}
