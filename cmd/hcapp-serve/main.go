// Command hcapp-serve runs the HCAPP reproduction as a long-lived
// simulation service: experiment jobs go in over HTTP, live telemetry
// comes out as Prometheus metrics.
//
//	hcapp-serve -addr :8080 -workers 4
//
// Endpoints:
//
//	POST /v1/jobs             submit a simulation job (JSON body)
//	GET  /v1/jobs             list retained jobs
//	GET  /v1/jobs/{id}        job status + result
//	GET  /v1/jobs/{id}/trace  page through the live power trace
//	GET  /v1/traces           distributed span trees (docs/TRACING.md)
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             process liveness (always 200 once serving)
//	GET  /readyz              routability (503 while draining/unready)
//
// Passing -pprof additionally mounts Go's profiling endpoints under
// /debug/pprof/ (all roles; opt-in because a profile can stall the
// process for its whole sampling window).
//
// The process can also run as one node of a distributed fleet
// (docs/CLUSTER.md):
//
//	hcapp-serve -role coordinator -addr :8080
//	hcapp-serve -role worker -addr :8081 -coordinator http://host:8080
//
// A coordinator additionally mounts POST /v1/cluster/{register,
// heartbeat,run} and GET /v1/cluster/workers, shards job batches across
// registered workers, and dedups identical work fleet-wide. The default
// role, standalone, is bit-compatible with every previous release:
// jobs simulate on the local pool with no cluster machinery involved.
//
// For robustness testing, coordinator and worker roles accept
// -chaos-seed (with -chaos-profile): a deterministic fault injector
// that perturbs the cluster transport while output must stay
// byte-identical (docs/CLUSTER.md).
//
// The process drains gracefully on SIGTERM/SIGINT: in-flight
// simulations finish (bounded by -drain), new submissions get 503.
// See docs/METRICS.md for the metric catalogue and README.md for curl
// examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hcapp/internal/buildinfo"
	"hcapp/internal/chaos"
	"hcapp/internal/cluster"
	"hcapp/internal/server"
	"hcapp/internal/sim"
	"hcapp/internal/telemetry"
	"hcapp/internal/tracing"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "simulation worker pool size")
	queue := flag.Int("queue", 32, "job queue depth (back-pressure bound)")
	maxDurMS := flag.Float64("max-dur", 64, "maximum per-job target duration, simulated ms")
	maxJobs := flag.Int("max-jobs", 256, "retained job table size")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock budget; exceeding it fails the job with a timeout reason (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful shutdown drain budget")
	drainAlias := flag.Duration("drain", 0, "deprecated alias for -drain-timeout")
	role := flag.String("role", "standalone", "node role: standalone, coordinator or worker")
	coordinator := flag.String("coordinator", "", "coordinator base URL (worker role)")
	advertise := flag.String("advertise", "", "base URL the coordinator dials this worker back on (worker role; default derived from -addr on loopback)")
	workerID := flag.String("worker-id", "", "stable fleet identity (worker role; default random)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "fleet heartbeat interval (coordinator role)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admitted items/sec, 0 = unlimited (coordinator role)")
	tenantBurst := flag.Int("tenant-burst", 256, "per-tenant token-bucket burst (coordinator role)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge straggler slices onto a second worker after this latency; 0 adapts to recent latencies, negative disables (coordinator role)")
	chaosSeed := flag.Int64("chaos-seed", 0, "deterministic fault-injection seed for the cluster transport, 0 = chaos off (coordinator/worker roles; testing only)")
	chaosProfile := flag.String("chaos-profile", "soak", "fault-injection intensity: light, soak or heavy (with -chaos-seed)")
	maxTraces := flag.Int("max-traces", 0, "retained span-tree table size behind GET /v1/traces, 0 = default 256")
	pprofOn := flag.Bool("pprof", false, "mount Go profiling endpoints under /debug/pprof/ (CPU/heap/goroutine profiles; off by default)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "hcapp-serve")
		return
	}

	drain := drainTimeout
	if *drainAlias > 0 {
		drain = drainAlias
	}

	// Chaos is opt-in and scoped to the cluster transport: the injector
	// only exists when -chaos-seed is set, and standalone nodes have no
	// transport to perturb.
	var inj *chaos.Injector
	if *chaosSeed != 0 {
		if *role == "standalone" {
			fmt.Fprintln(os.Stderr, "hcapp-serve: -chaos-seed needs -role coordinator or worker (standalone has no cluster transport)")
			os.Exit(2)
		}
		profile, err := chaos.ProfileByName(*chaosProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcapp-serve: %v\n", err)
			os.Exit(2)
		}
		inj = chaos.New(*chaosSeed, profile)
	}

	switch *role {
	case "standalone", "coordinator":
	case "worker":
		if *coordinator == "" {
			fmt.Fprintln(os.Stderr, "hcapp-serve: -role worker requires -coordinator URL")
			os.Exit(2)
		}
		runWorker(*addr, *coordinator, *advertise, *workerID, *workers, *drain, inj, *maxTraces, *pprofOn)
		return
	default:
		fmt.Fprintf(os.Stderr, "hcapp-serve: unknown -role %q (valid: standalone, coordinator, worker)\n", *role)
		os.Exit(2)
	}

	cfg := server.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		MaxDur:     sim.Time(*maxDurMS * float64(sim.Millisecond)),
		MaxJobs:    *maxJobs,
		JobTimeout: *jobTimeout,
		MaxTraces:  *maxTraces,
	}
	if *role == "coordinator" {
		ccfg := cluster.CoordinatorConfig{
			HeartbeatEvery: *heartbeat,
			TenantRate:     *tenantRate,
			TenantBurst:    *tenantBurst,
			HedgeAfter:     *hedgeAfter,
		}
		if inj != nil {
			// Outbound slices to workers go through the fault-injecting
			// transport; each node draws its own schedule from the seed.
			inj = inj.ForNode("coordinator")
			ccfg.Client = &http.Client{Transport: inj.RoundTripper(nil)}
			log.Printf("hcapp-serve: chaos enabled (seed %d, profile %s) — testing only", *chaosSeed, *chaosProfile)
		}
		cfg.Cluster = cluster.NewCoordinator(ccfg)
		cfg.Chaos = inj
	}
	srv := server.New(cfg)

	var handler http.Handler = srv
	if inj != nil {
		// Inbound registrations, heartbeats and batch submissions take
		// faults too; health probes and /metrics stay exempt.
		handler = inj.Middleware(handler)
	}
	// Profiling mounts outside the chaos middleware: profiling a
	// fault-injected node must not itself take faults.
	handler = withPprof(handler, *pprofOn)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hcapp-serve: %s listening on %s (%d workers, queue %d)", *role, *addr, *workers, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("hcapp-serve: signal received, draining (budget %s)", *drain)
	case err := <-errCh:
		log.Printf("hcapp-serve: listener failed: %v", err)
		os.Exit(1)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting HTTP first, then let queued/running jobs finish.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hcapp-serve: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hcapp-serve: jobs still running at drain deadline: %v\n", err)
		os.Exit(1)
	}
	log.Printf("hcapp-serve: drained cleanly")
}

// withPprof mounts Go's /debug/pprof/ endpoints in front of h when
// enabled. Opt-in (-pprof) because a CPU profile or execution trace
// stalls its target for the whole sampling window — not something to
// leave open on a node serving a fleet.
func withPprof(h http.Handler, enabled bool) http.Handler {
	if !enabled {
		return h
	}
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// runWorker serves the worker role: a slice-execution HTTP surface plus
// a register/heartbeat loop against the coordinator. It blocks until
// SIGTERM/SIGINT and then drains the listener.
func runWorker(addr, coordinator, advertise, id string, workers int, drain time.Duration, inj *chaos.Injector, maxTraces int, pprofOn bool) {
	if advertise == "" {
		// A bare ":8081" listen address reaches itself on loopback; a
		// worker on another host must advertise explicitly.
		host := addr
		if strings.HasPrefix(host, ":") {
			host = "127.0.0.1" + host
		}
		advertise = "http://" + host
	}

	// Workers carry their own observability surface: a registry with the
	// engine-stage latency histogram and Go runtime gauges, plus a span
	// store so the node's partial view of each distributed trace is
	// inspectable in place (the coordinator holds the assembled trees).
	reg := telemetry.NewRegistry()
	reg.Gauge("hcapp_build_info",
		"Build metadata carried in labels; the value is always 1.",
		"version").With(buildinfo.Version()).Set(1)
	rt := telemetry.NewRuntimeMetrics(reg)
	stage := reg.Histogram("hcapp_stage_duration_seconds",
		"Wall-clock duration of each request-pipeline stage executed on this node.",
		telemetry.DefBuckets(), "stage")
	tracer := tracing.New(tracing.Config{MaxTraces: maxTraces, Stages: stage})

	wcfg := cluster.WorkerConfig{
		ID:            id,
		Coordinator:   coordinator,
		AdvertiseAddr: advertise,
		Workers:       workers,
		Tracer:        tracer,
	}
	if inj != nil {
		// Give every worker its own schedule keyed by its stable fleet
		// identity; pass -worker-id for a reproducible run.
		node := id
		if node == "" {
			node = advertise
		}
		inj = inj.ForNode(node)
		inj.WithMetrics(chaos.NewMetrics(reg))
		wcfg.Client = &http.Client{Timeout: 10 * time.Second, Transport: inj.RoundTripper(nil)}
		log.Printf("hcapp-serve: chaos enabled on worker %s — testing only", node)
	}
	w := cluster.NewWorker(wcfg)

	var handler http.Handler = w.Handler()
	if inj != nil {
		handler = inj.Middleware(handler)
	}
	// Observability endpoints mount outside the chaos middleware, like
	// the coordinator's: scrapes and trace reads must stay clean while
	// the transport under test is being perturbed.
	render := reg.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("/v1/traces", tracing.Handler(tracer))
	mux.Handle("/metrics", http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rt.Refresh()
		render.ServeHTTP(rw, r)
	}))
	handler = withPprof(mux, pprofOn)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hcapp-serve: worker %s listening on %s (advertising %s, %d local workers)",
			w.ID(), addr, advertise, workers)
		errCh <- httpSrv.ListenAndServe()
	}()
	go func() {
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			log.Printf("hcapp-serve: worker loop: %v", err)
		}
	}()

	select {
	case <-ctx.Done():
		log.Printf("hcapp-serve: worker %s draining (budget %s)", w.ID(), drain)
	case err := <-errCh:
		log.Printf("hcapp-serve: listener failed: %v", err)
		os.Exit(1)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hcapp-serve: http shutdown: %v", err)
	}
	log.Printf("hcapp-serve: worker %s drained", w.ID())
}
