// Command hcapp-serve runs the HCAPP reproduction as a long-lived
// simulation service: experiment jobs go in over HTTP, live telemetry
// comes out as Prometheus metrics.
//
//	hcapp-serve -addr :8080 -workers 4
//
// Endpoints:
//
//	POST /v1/jobs             submit a simulation job (JSON body)
//	GET  /v1/jobs             list retained jobs
//	GET  /v1/jobs/{id}        job status + result
//	GET  /v1/jobs/{id}/trace  page through the live power trace
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness + queue state
//
// The process drains gracefully on SIGTERM/SIGINT: in-flight
// simulations finish (bounded by -drain), new submissions get 503.
// See docs/METRICS.md for the metric catalogue and README.md for curl
// examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hcapp/internal/server"
	"hcapp/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "simulation worker pool size")
	queue := flag.Int("queue", 32, "job queue depth (back-pressure bound)")
	maxDurMS := flag.Float64("max-dur", 64, "maximum per-job target duration, simulated ms")
	maxJobs := flag.Int("max-jobs", 256, "retained job table size")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock budget; exceeding it fails the job with a timeout reason (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful shutdown drain budget")
	drainAlias := flag.Duration("drain", 0, "deprecated alias for -drain-timeout")
	flag.Parse()

	drain := drainTimeout
	if *drainAlias > 0 {
		drain = drainAlias
	}

	srv := server.New(server.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		MaxDur:     sim.Time(*maxDurMS * float64(sim.Millisecond)),
		MaxJobs:    *maxJobs,
		JobTimeout: *jobTimeout,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hcapp-serve: listening on %s (%d workers, queue %d)", *addr, *workers, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("hcapp-serve: signal received, draining (budget %s)", *drain)
	case err := <-errCh:
		log.Printf("hcapp-serve: listener failed: %v", err)
		os.Exit(1)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting HTTP first, then let queued/running jobs finish.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hcapp-serve: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hcapp-serve: jobs still running at drain deadline: %v\n", err)
		os.Exit(1)
	}
	log.Printf("hcapp-serve: drained cleanly")
}
