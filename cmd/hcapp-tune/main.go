// Command hcapp-tune calibrates the simulated target system: it probes
// the fixed-voltage power envelope, sweeps the fixed baseline voltage
// (the paper "selected [0.95 V] because it achieved the highest
// performance without violating the power target", §4), sweeps HCAPP's
// power target to find the guardband each limit window requires, and
// checks PID tracking quality — the §3.1 tuning workflow as a tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"hcapp/internal/buildinfo"
	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/sim"
)

func main() {
	mode := flag.String("mode", "probe", "probe | fixsweep | target | pid")
	dur := flag.Float64("dur", 12, "target duration in ms")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "hcapp-tune")
		return
	}

	ev := experiment.NewEvaluator().WithTargetDur(sim.Time(*dur * float64(sim.Millisecond)))

	var err error
	switch *mode {
	case "probe":
		err = probe(ev)
	case "fixsweep":
		err = fixSweep(ev)
	case "target":
		err = targetSweep(ev)
	case "pid":
		err = pidCheck(ev)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcapp-tune:", err)
		os.Exit(1)
	}
}

// probe reports the fixed-voltage power envelope per combo.
func probe(ev *experiment.Evaluator) error {
	fmt.Printf("Fixed voltage %.2f V envelope (target dur %s)\n", ev.FixedV, sim.FormatTime(ev.TargetDur))
	fmt.Printf("%-14s %8s %8s %8s %10s %10s %10s %10s\n",
		"combo", "avgW", "max20us", "max1ms", "cpu-done", "gpu-done", "sha-done", "completed")
	fast := config.PackagePinLimit()
	for _, combo := range experiment.Suite() {
		r, err := ev.Run(experiment.RunSpec{Combo: combo, Scheme: ev.FixedScheme(), Limit: fast})
		if err != nil {
			return err
		}
		// Re-derive the 1 ms window max by running under the slow limit
		// (cached run shares the same trace statistics only per-limit, so
		// run again).
		rSlow, err := ev.Run(experiment.RunSpec{Combo: combo, Scheme: ev.FixedScheme(), Limit: config.OffPackageVRLimit()})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %8.2f %8.2f %8.2f %10s %10s %10s %10v\n",
			combo.Name, r.AvgPower, r.MaxWindowPower, rSlow.MaxWindowPower,
			sim.FormatTime(r.Completion["cpu"]), sim.FormatTime(r.Completion["gpu"]),
			sim.FormatTime(r.Completion["sha"]), r.Completed)
	}
	return nil
}

// fixSweep finds the highest fixed voltage with no fast-limit violation.
func fixSweep(ev *experiment.Evaluator) error {
	limit := config.PackagePinLimit()
	fmt.Printf("Fixed-voltage sweep against %s (%g W / %s)\n", limit.Name, limit.Watts, sim.FormatTime(limit.Window))
	fmt.Printf("%8s %10s %10s\n", "voltage", "worstMax", "violates")
	best := 0.0
	for v := 0.80; v <= 1.051; v += 0.01 {
		sub := experiment.NewEvaluator().WithTargetDur(ev.TargetDur)
		sub.FixedV = v
		worst := 0.0
		for _, combo := range experiment.Suite() {
			r, err := sub.Run(experiment.RunSpec{Combo: combo, Scheme: sub.FixedScheme(), Limit: limit})
			if err != nil {
				return err
			}
			if r.MaxWindowPower > worst {
				worst = r.MaxWindowPower
			}
		}
		viol := worst > limit.Watts
		if !viol && v > best {
			best = v
		}
		fmt.Printf("%8.2f %10.2f %10v\n", v, worst, viol)
	}
	fmt.Printf("highest non-violating fixed voltage: %.2f V\n", best)
	return nil
}

// targetSweep finds, per limit, the highest HCAPP power target with no
// violation anywhere in the suite (the guardband calibration).
func targetSweep(ev *experiment.Evaluator) error {
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return err
	}
	for _, limit := range []config.PowerLimit{config.PackagePinLimit(), config.OffPackageVRLimit()} {
		fmt.Printf("Target sweep, HCAPP, limit %s (%g W / %s)\n", limit.Name, limit.Watts, sim.FormatTime(limit.Window))
		fmt.Printf("%8s %10s %8s %10s\n", "target", "worstMax", "avgPPE", "violates")
		for frac := 0.70; frac <= 1.001; frac += 0.02 {
			target := limit.Watts * frac
			worst, ppeSum := 0.0, 0.0
			n := 0
			for _, combo := range experiment.Suite() {
				r, err := runWithTarget(ev, combo, hcapp, limit, target)
				if err != nil {
					return err
				}
				if r.MaxWindowPower > worst {
					worst = r.MaxWindowPower
				}
				ppeSum += r.PPE
				n++
			}
			fmt.Printf("%8.1f %10.2f %8.3f %10v\n", target, worst, ppeSum/float64(n), worst > limit.Watts)
		}
	}
	return nil
}

// runWithTarget runs one combo with an explicit power target, bypassing
// the evaluator cache.
func runWithTarget(ev *experiment.Evaluator, combo experiment.Combo, scheme config.Scheme, limit config.PowerLimit, target float64) (experiment.RunResult, error) {
	sizing, err := experiment.SizeWork(ev.Cfg, combo, ev.FixedV, ev.TargetDur)
	if err != nil {
		return experiment.RunResult{}, err
	}
	sys, err := experiment.Build(ev.Cfg, combo, experiment.BuildOptions{
		Scheme:      scheme,
		TargetPower: target,
		CPUWork:     sizing.CPUWork,
		GPUWork:     sizing.GPUWork,
		AccelWorkGB: sizing.AccelGB,
	})
	if err != nil {
		return experiment.RunResult{}, err
	}
	res := sys.Engine.Run(3 * ev.TargetDur)
	rec := sys.Engine.Recorder()
	out := experiment.RunResult{
		MaxWindowPower: rec.MaxWindowAvg(limit.Window),
		AvgPower:       rec.AvgPower(),
		PPE:            rec.PPE(limit.Watts),
		Duration:       res.Duration,
		Completed:      res.Completed,
	}
	return out, nil
}

// pidCheck reports HCAPP tracking quality on each combo.
func pidCheck(ev *experiment.Evaluator) error {
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return err
	}
	for _, limit := range []config.PowerLimit{config.PackagePinLimit(), config.OffPackageVRLimit()} {
		target := experiment.TargetPowerFor(limit)
		fmt.Printf("PID tracking, limit %s, target %.1f W\n", limit.Name, target)
		fmt.Printf("%-14s %8s %8s %10s %10s\n", "combo", "avgW", "maxW", "dur", "completed")
		for _, combo := range experiment.Suite() {
			r, err := ev.Run(experiment.RunSpec{Combo: combo, Scheme: hcapp, Limit: limit})
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %8.2f %8.2f %10s %10v\n",
				combo.Name, r.AvgPower, r.MaxWindowPower, sim.FormatTime(r.Duration), r.Completed)
		}
	}
	return nil
}
