package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseExperimentIDsAll(t *testing.T) {
	ids, err := parseExperimentIDs("all")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, len(experimentIDs))
	for _, id := range experimentIDs {
		if !notInAll[id] {
			want = append(want, id)
		}
	}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("all = %v, want %v", ids, want)
	}
	for _, id := range ids {
		if notInAll[id] {
			t.Fatalf("%q escaped the notInAll filter", id)
		}
	}
}

func TestParseExperimentIDsNormalizes(t *testing.T) {
	ids, err := parseExperimentIDs(" FIG4 ,fig5,, Table1 ")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"fig4", "fig5", "table1"}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
}

func TestParseExperimentIDsRejectsUnknown(t *testing.T) {
	// A typo anywhere in the list must fail up front, before any
	// experiment runs, and name every valid id.
	_, err := parseExperimentIDs("table1,fig99,fig4")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "fig99") {
		t.Errorf("error does not name the bad id: %s", msg)
	}
	for _, id := range experimentIDs {
		if !strings.Contains(msg, id) {
			t.Errorf("error does not list valid id %q: %s", id, msg)
		}
	}
}

func TestParseExperimentIDsRejectsEmpty(t *testing.T) {
	for _, in := range []string{"", " ", ",,"} {
		if _, err := parseExperimentIDs(in); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestRegistryHasNoDuplicates(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range experimentIDs {
		if seen[id] {
			t.Errorf("duplicate registry id %q", id)
		}
		seen[id] = true
	}
	for id := range notInAll {
		if !seen[id] {
			t.Errorf("notInAll id %q is not in the registry", id)
		}
	}
}

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{1, 4, 64} {
		if err := validateWorkers(n); err != nil {
			t.Errorf("validateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -8} {
		if err := validateWorkers(n); err == nil {
			t.Errorf("validateWorkers(%d) accepted a deadlocking pool size", n)
		}
	}
}
