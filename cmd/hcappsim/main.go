// Command hcappsim regenerates the paper's tables and figures from the
// simulated target system.
//
// Usage:
//
//	hcappsim -experiment fig4            # one experiment
//	hcappsim -experiment all             # everything (slow)
//	hcappsim -experiment table1,table2   # comma-separated list
//	hcappsim -dur 16 -seed 42            # run-length and seed control
//
// Experiments: table1 table2 table3 fig1 fig2 fig4 fig5 fig6 fig7 fig8
// fig9 fig10, plus the extensions and ablations: scaling, policies,
// centralized, locals, clocking, thermal, adversarial, faults,
// fault-sweep, energy.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hcapp/internal/buildinfo"
	"hcapp/internal/cluster"
	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/fault"
	"hcapp/internal/sim"
	"hcapp/internal/telemetry"
)

// experimentIDs is the registry of runnable experiment ids, in the
// order "-experiment all" executes them.
var experimentIDs = []string{
	"table1", "table2", "table3",
	"fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"scaling", "policies", "centralized", "locals", "clocking", "thermal",
	"adversarial", "faults", "fault-sweep", "energy", "vreff", "retarget", "seeds", "checks",
}

// notInAll lists registry ids excluded from "all": the seed sweep
// re-runs the whole validation suite once per seed.
var notInAll = map[string]bool{"seeds": true}

// parseExperimentIDs expands and validates the -experiment flag. Every
// id is checked before anything runs, so a typo in a long comma list
// fails fast instead of after an hour of simulation.
func parseExperimentIDs(exp string) ([]string, error) {
	if exp == "all" {
		ids := make([]string, 0, len(experimentIDs))
		for _, id := range experimentIDs {
			if !notInAll[id] {
				ids = append(ids, id)
			}
		}
		return ids, nil
	}
	valid := make(map[string]bool, len(experimentIDs))
	for _, id := range experimentIDs {
		valid[id] = true
	}
	var ids []string
	for _, raw := range strings.Split(exp, ",") {
		id := strings.TrimSpace(strings.ToLower(raw))
		if id == "" {
			continue
		}
		if !valid[id] {
			return nil, fmt.Errorf("unknown experiment %q (valid: all %s)",
				strings.TrimSpace(raw), strings.Join(experimentIDs, " "))
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiment ids given (valid: all %s)", strings.Join(experimentIDs, " "))
	}
	return ids, nil
}

// validateWorkers rejects non-positive pool sizes before anything runs
// (a zero-size pool would otherwise deadlock the scheduler).
func validateWorkers(workers int) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", workers)
	}
	return nil
}

func main() {
	exp := flag.String("experiment", "all", "experiment id(s), comma-separated, or 'all'")
	dur := flag.Float64("dur", 16, "target duration in milliseconds")
	seed := flag.Int64("seed", 42, "workload generation seed")
	combo := flag.String("combo", "Burst-Burst", "combo for fig1/fig2 traces")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (output is identical at any width)")
	coordinator := flag.String("coordinator", "", "offload simulations to the fleet coordinator at this URL (rendered output is identical)")
	priority := flag.String("priority", cluster.PriorityBatch, "fleet priority class with -coordinator: interactive or batch")
	adaptive := flag.Bool("adaptive", false, "stride over steady-state regions (bitwise-identical output, less wall clock)")
	tenant := flag.String("tenant", "", "fleet tenant id for rate limiting with -coordinator")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "hcappsim")
		return
	}

	ids, err := parseExperimentIDs(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcappsim: %v\n", err)
		os.Exit(2)
	}
	if err := validateWorkers(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "hcappsim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	runner := experiment.NewRunner(*workers)
	ev := experiment.NewEvaluator().WithTargetDur(sim.Time(*dur * float64(sim.Millisecond))).WithRunner(runner)
	ev.Cfg.Seed = *seed
	ev.Adaptive = *adaptive

	var fleet *cluster.Client
	if *coordinator != "" {
		if !cluster.ValidPriority(*priority) {
			fmt.Fprintf(os.Stderr, "hcappsim: unknown -priority %q (valid: %s, %s)\n",
				*priority, cluster.PriorityInteractive, cluster.PriorityBatch)
			os.Exit(2)
		}
		fleet, err = cluster.NewClient(*coordinator)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcappsim: %v\n", err)
			os.Exit(2)
		}
		fleet.Priority = *priority
		fleet.Tenant = *tenant
		if err := fleet.Ping(context.Background(), 10*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "hcappsim: %v\n", err)
			os.Exit(2)
		}
		// Uncached runs now execute on the fleet; the local run cache,
		// single-flight dedup, and all rendering are untouched, so output
		// is byte-identical to a local run.
		ev.Remote = fleet
	}

	for _, id := range ids {
		if err := run(ev, runner, fleet, id, *combo); err != nil {
			fmt.Fprintf(os.Stderr, "hcappsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func run(ev *experiment.Evaluator, runner *experiment.Runner, fleet *cluster.Client, id, comboName string) error {
	switch id {
	case "table1":
		fmt.Print(experiment.Table1())
		if experiment.Table1Feasible() {
			fmt.Println("round trip fits inside the HCAPP control period: OK")
		} else {
			fmt.Println("WARNING: round trip exceeds the HCAPP control period")
		}
	case "table2":
		fmt.Println("Table 2: Details of CPU and GPU Configuration")
		fmt.Print(ev.Cfg.Table2())
	case "table3":
		fmt.Println("Table 3: Benchmark Combinations Used for Validation")
		fmt.Print(experiment.Table3())
	case "fig1":
		combo, err := experiment.ComboByName(comboName)
		if err != nil {
			return err
		}
		pts, avg, err := ev.Fig1(combo, 100*sim.Microsecond)
		if err != nil {
			return err
		}
		fmt.Printf("Fig 1: %s static-voltage power trace normalized to average (%.1f W)\n", combo.Name, avg)
		fmt.Printf("%12s %12s\n", "time", "P/avg")
		for _, p := range pts {
			fmt.Printf("%12s %12.3f\n", sim.FormatTime(p.T), p.P)
		}
	case "fig2":
		combo, err := experiment.ComboByName(comboName)
		if err != nil {
			return err
		}
		windows := []sim.Time{20 * sim.Microsecond, 1 * sim.Millisecond, 10 * sim.Millisecond}
		series, avg, err := ev.Fig2(combo, windows, 200*sim.Microsecond)
		if err != nil {
			return err
		}
		fmt.Printf("Fig 2: %s power over limit time windows, normalized to average (%.1f W)\n", combo.Name, avg)
		fmt.Printf("peak/avg per window:")
		for _, w := range windows {
			peak := 0.0
			for _, p := range series[w] {
				if p.P > peak {
					peak = p.P
				}
			}
			fmt.Printf("  %s: %.3f", sim.FormatTime(w), peak)
		}
		fmt.Println()
	case "fig4":
		return render(ev.Fig4())
	case "fig5":
		return render(ev.Fig5())
	case "fig6":
		return render(ev.Fig6())
	case "fig7":
		return render(ev.Fig7())
	case "fig8":
		return render(ev.Fig8())
	case "fig9":
		return render(ev.Fig9())
	case "fig10":
		return render(ev.Fig10())
	case "scaling":
		sc := experiment.DefaultScalingConfig()
		sc.Adaptive = ev.Adaptive
		if fleet != nil {
			// The scaling sweep builds engines directly rather than going
			// through the evaluator, so it offloads cell-by-cell.
			sc.Cell = fleet.ScalingCellFunc()
		}
		res, err := experiment.RunScalingWith(runner, ev.Cfg, sc)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "policies":
		return render(ev.ExtensionSoftwarePolicies())
	case "centralized":
		return render(ev.ExtensionCentralized(config.PackagePinLimit()))
	case "locals":
		return render(ev.AblationLocalControllers())
	case "clocking":
		return render(ev.AblationClocking())
	case "thermal":
		out, err := ev.RenderThermalCheck()
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "faults":
		combo, err := experiment.ComboByName(comboName)
		if err != nil {
			return err
		}
		results, err := ev.RunFaultInjection(combo)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderFaultInjection(combo, results))
	case "fault-sweep":
		combo, err := experiment.ComboByName(comboName)
		if err != nil {
			return err
		}
		sweep, err := ev.RunFaultSweep(combo, config.PackagePinLimit(), 0, ev.Cfg.Seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderFaultSweep(sweep))
		reg := telemetry.NewRegistry()
		sweep.Publish(fault.NewMetrics(reg))
		fmt.Println("\nResilience counters (Prometheus text):")
		fmt.Print(reg.Text())
	case "energy":
		combo, err := experiment.ComboByName(comboName)
		if err != nil {
			return err
		}
		rep, err := ev.RunEnergyAttribution(combo, config.PackagePinLimit())
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderEnergyAttribution(rep))
	case "vreff":
		return render(ev.AblationVREfficiency())
	case "retarget":
		combo, err := experiment.ComboByName(comboName)
		if err != nil {
			return err
		}
		r, err := ev.RunRetarget(combo)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	case "seeds":
		sw, err := experiment.RunSeedSweepWith(runner, []int64{1, 2, 3, 42, 1234}, config.OffPackageVRLimit(), ev.TargetDur, ev.Adaptive)
		if err != nil {
			return err
		}
		fmt.Print(sw.Render())
	case "checks":
		checks, err := ev.ShapeChecks()
		if err != nil {
			return err
		}
		for _, c := range checks {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
			}
			fmt.Printf("%-4s %s (%s)\n", mark, c.Name, c.Detail)
		}
		if failed := experiment.Failed(checks); len(failed) > 0 {
			return fmt.Errorf("%d shape check(s) failed", len(failed))
		}
	case "adversarial":
		c, err := experiment.ComboByName("Hi-Hi")
		if err != nil {
			return err
		}
		scheme, err := config.SchemeByKind(config.HCAPP)
		if err != nil {
			return err
		}
		limit := config.PackagePinLimit()
		honest, err := ev.Run(experiment.RunSpec{Combo: c, Scheme: scheme, Limit: limit})
		if err != nil {
			return err
		}
		adv, err := ev.Run(experiment.RunSpec{Combo: c, Scheme: scheme, Limit: limit, AdversarialAccel: true})
		if err != nil {
			return err
		}
		fmt.Printf("Adversarial accelerator local controller (Hi-Hi, %s limit)\n", limit.Name)
		fmt.Printf("%-14s max/limit=%.3f violated=%v cpu-done=%s\n", "pass-through",
			honest.MaxOverLimit, honest.Violated, sim.FormatTime(honest.Completion["cpu"]))
		fmt.Printf("%-14s max/limit=%.3f violated=%v cpu-done=%s\n", "adversarial",
			adv.MaxOverLimit, adv.Violated, sim.FormatTime(adv.Completion["cpu"]))
	default:
		// parseExperimentIDs screens ids before this runs; reaching here
		// means the registry lists an id the switch does not handle.
		return fmt.Errorf("experiment %q is registered but not implemented", id)
	}
	return nil
}

func render(m *experiment.Matrix, err error) error {
	if err != nil {
		return err
	}
	fmt.Print(m.Render())
	return nil
}
