// Command hcapp-trace dumps power traces as CSV: the Figure 1 static
// trace (normalized to average power) and the Figure 2 multi-window
// view, plus per-component traces and controlled-run traces for
// inspecting HCAPP behaviour.
package main

import (
	"flag"
	"fmt"
	"os"

	"hcapp/internal/buildinfo"
	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/export"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
)

func main() {
	fig := flag.Int("fig", 1, "1: static trace; 2: windowed views; 3: controlled-run power+voltage")
	comboName := flag.String("combo", "Burst-Burst", "workload combination")
	durMS := flag.Float64("dur", 16, "run length, milliseconds")
	sampleUS := flag.Float64("sample", 20, "sample spacing, microseconds")
	scheme := flag.String("scheme", "fixed-voltage", "fixed-voltage | hcapp | rapl-like | sw-like")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "hcapp-trace")
		return
	}

	ev := experiment.NewEvaluator().WithTargetDur(sim.Time(*durMS * float64(sim.Millisecond)))
	combo, err := experiment.ComboByName(*comboName)
	if err != nil {
		fatal(err)
	}
	sample := sim.Time(*sampleUS * float64(sim.Microsecond))

	switch *fig {
	case 1:
		pts, avg, err := traceFor(ev, combo, config.SchemeKind(*scheme), sample)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# combo=%s scheme=%s avg_power_w=%.2f\n", combo.Name, *scheme, avg)
		fmt.Println("time_us,power_normalized")
		for _, p := range pts {
			fmt.Printf("%.1f,%.4f\n", float64(p.T)/float64(sim.Microsecond), p.P)
		}
	case 2:
		windows := []sim.Time{20 * sim.Microsecond, 1 * sim.Millisecond, 10 * sim.Millisecond}
		series, avg, err := ev.Fig2(combo, windows, sample)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# combo=%s avg_power_w=%.2f\n", combo.Name, avg)
		fmt.Println("time_us,win20us,win1ms,win10ms")
		n := len(series[windows[0]])
		for _, w := range windows[1:] {
			if len(series[w]) < n {
				n = len(series[w])
			}
		}
		for i := 0; i < n; i++ {
			fmt.Printf("%.1f,%.4f,%.4f,%.4f\n",
				float64(series[windows[0]][i].T)/float64(sim.Microsecond),
				series[windows[0]][i].P, series[windows[1]][i].P, series[windows[2]][i].P)
		}
	case 3:
		if err := voltageTrace(ev, combo, config.SchemeKind(*scheme), sample); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown figure %d", *fig))
	}
}

// voltageTrace runs one combo with component and voltage tracking and
// emits aligned power/voltage CSV columns — the view of the controller
// at work.
func voltageTrace(ev *experiment.Evaluator, combo experiment.Combo, kind config.SchemeKind, sample sim.Time) error {
	scheme := config.Scheme{Kind: kind, FixedV: ev.FixedV}
	if kind != config.FixedVoltage {
		var err error
		scheme, err = config.SchemeByKind(kind)
		if err != nil {
			return err
		}
	}
	sizing, err := experiment.SizeWork(ev.Cfg, combo, ev.FixedV, ev.TargetDur)
	if err != nil {
		return err
	}
	opts := experiment.BuildOptions{
		Scheme:          scheme,
		CPUWork:         sizing.CPUWork,
		GPUWork:         sizing.GPUWork,
		AccelWorkGB:     sizing.AccelGB,
		TrackComponents: true,
	}
	if kind != config.FixedVoltage {
		opts.TargetPower = experiment.TargetPowerFor(config.PackagePinLimit())
	}
	sys, err := experiment.Build(ev.Cfg, combo, opts)
	if err != nil {
		return err
	}
	sys.Engine.RunFor(ev.TargetDur)
	rec := sys.Engine.Recorder()
	cpuW := rec.ComponentSeries("cpu", sample)
	gpuW := rec.ComponentSeries("gpu", sample)
	shaW := rec.ComponentSeries("sha", sample)
	names := []string{"total_w", "cpu_w", "gpu_w", "sha_w", "rail_v", "vcpu_v", "vgpu_v",
		"ecpu_j", "egpu_j", "esha_j"}
	series := [][]trace.Point{
		rec.Series(sample),
		cpuW,
		gpuW,
		shaW,
		rec.ComponentSeries("voltage:rail", sample),
		rec.ComponentSeries("voltage:cpu", sample),
		rec.ComponentSeries("voltage:gpu", sample),
		cumulativeEnergy(cpuW, sample),
		cumulativeEnergy(gpuW, sample),
		cumulativeEnergy(shaW, sample),
	}
	fmt.Printf("# combo=%s scheme=%s\n", combo.Name, scheme.Kind)
	return export.WriteSeriesCSV(os.Stdout, names, series...)
}

// cumulativeEnergy integrates a sampled per-domain power series into a
// running joule column (rectangle rule at the sample spacing) — the
// trace-side counterpart of the internal/energy ledger, so a trace and
// the ledger's chargeback numbers can be eyeballed against each other.
func cumulativeEnergy(pts []trace.Point, sample sim.Time) []trace.Point {
	sec := sim.Seconds(sample)
	out := make([]trace.Point, len(pts))
	acc := 0.0
	for i, p := range pts {
		acc += p.P * sec
		out[i] = trace.Point{T: p.T, P: acc}
	}
	return out
}

// traceFor runs one combo under the named scheme and returns its
// normalized trace.
func traceFor(ev *experiment.Evaluator, combo experiment.Combo, kind config.SchemeKind, sample sim.Time) ([]trace.Point, float64, error) {
	if kind == config.FixedVoltage {
		return ev.Fig1(combo, sample)
	}
	scheme, err := config.SchemeByKind(kind)
	if err != nil {
		return nil, 0, err
	}
	sizing, err := experiment.SizeWork(ev.Cfg, combo, ev.FixedV, ev.TargetDur)
	if err != nil {
		return nil, 0, err
	}
	sys, err := experiment.Build(ev.Cfg, combo, experiment.BuildOptions{
		Scheme:      scheme,
		TargetPower: experiment.TargetPowerFor(config.PackagePinLimit()),
		CPUWork:     sizing.CPUWork,
		GPUWork:     sizing.GPUWork,
		AccelWorkGB: sizing.AccelGB,
	})
	if err != nil {
		return nil, 0, err
	}
	sys.Engine.RunFor(ev.TargetDur)
	rec := sys.Engine.Recorder()
	avg := rec.AvgPower()
	raw := rec.Series(sample)
	out := make([]trace.Point, len(raw))
	for i, p := range raw {
		out[i] = trace.Point{T: p.T, P: p.P / avg}
	}
	return out, avg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcapp-trace:", err)
	os.Exit(1)
}
