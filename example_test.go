package hcapp_test

import (
	"fmt"
	"strings"

	"hcapp"
)

// The delay budget of Table 1 shows the control round trip fits the
// 1 µs HCAPP period.
func ExampleTable1Feasible() {
	fmt.Println(hcapp.Table1Feasible())
	// Output: true
}

// Table 3 defines the heterogeneous test suite.
func ExampleSuite() {
	for _, c := range hcapp.Suite()[:3] {
		fmt.Printf("%s: %s + %s\n", c.Name, c.CPU.Name, c.GPU.Name)
	}
	// Output:
	// Burst-Burst: ferret + bfs
	// Burst-Low: ferret + myocyte
	// Const-Burst: swaptions + bfs
}

// Custom workloads load from JSON and slot into custom suites.
func ExampleLoadBenchmarks() {
	specs := `[{"name": "mykernel", "target": "gpu", "class": "Hi",
		"kind": "constant", "phase_dur_us": 100,
		"ipc": 1.4, "mem_frac": 0.3, "activity": 0.7, "stall_act": 0.1}]`
	custom, err := hcapp.LoadBenchmarks(strings.NewReader(specs))
	if err != nil {
		panic(err)
	}
	combos, err := hcapp.ParseSuite(
		strings.NewReader(`[{"name": "Mine", "cpu": "swaptions", "gpu": "mykernel"}]`),
		custom)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s runs %s on the GPU\n", combos[0].Name, combos[0].GPU.Name)
	// Output: Mine runs mykernel on the GPU
}

// Power limits pair a wattage with the time window it is evaluated
// over (paper §1).
func ExamplePackagePinLimit() {
	fast := hcapp.PackagePinLimit()
	slow := hcapp.OffPackageVRLimit()
	fmt.Printf("%s: %.0f W / %d µs\n", fast.Name, fast.Watts, fast.Window/hcapp.Microsecond)
	fmt.Printf("%s: %.0f W / %d ms\n", slow.Name, slow.Watts, slow.Window/hcapp.Millisecond)
	// Output:
	// package-pin: 100 W / 20 µs
	// off-package-vr: 100 W / 1 ms
}

// The §5.3 software interface expresses priorities as register values:
// the prioritized component keeps 1.0 and the others run at 0.9.
func ExamplePriorityFor() {
	p := hcapp.PriorityFor("gpu")
	fmt.Printf("cpu=%.1f gpu=%.1f sha=%.1f\n", p["cpu"], p["gpu"], p["sha"])
	// Output: cpu=0.9 gpu=1.0 sha=0.9
}

// Running one combo under HCAPP and checking the power limit held.
func ExampleEvaluator_Run() {
	ev := hcapp.NewEvaluator().WithTargetDur(1 * hcapp.Millisecond)
	combo, _ := hcapp.ComboByName("Low-Low")
	res, err := ev.Run(hcapp.RunSpec{
		Combo:  combo,
		Scheme: hcapp.HCAPPScheme(),
		Limit:  hcapp.PackagePinLimit(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("violated:", res.Violated)
	// Output: violated: false
}
