#!/bin/sh
# Tier-1 gate, mirroring `make ci` for environments without make:
# formatting, vet, build, and the race-enabled test suite.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# The fleet scheduler, its serve integration, and the chaos injector
# are the most concurrency-heavy packages; run them race-enabled one
# extra time with count=1 so caching never masks a racy interleaving.
# This pass covers the breaker, hedging, and backoff tests too.
echo "== cluster packages under -race (uncached) =="
go test -race -count=1 ./internal/cluster ./internal/server ./internal/chaos ./internal/tracing

# The step-overhead contracts compare inlined hot paths; race
# instrumentation disables that inlining, so they skip under -race and
# run here without it. The parallel-speedup contract needs undistorted
# wall clocks too (it self-skips on hosts with fewer than 4 CPUs).
echo "== timing guards (no race) =="
go test -run TestInstrumentedStepOverhead -count=1 .
go test -run TestEnergyLedgerStepOverhead -count=1 .
go test -run TestFaultInjectionStepOverhead -count=1 ./internal/sched
go test -run TestTracingStepOverhead -count=1 ./internal/tracing
go test -run TestRunnerParallelSpeedup -count=1 ./internal/experiment

# Hot-path bench gate: the adaptive speedup test enforces the headline
# contracts (≥5× adaptive speedup on the Fig. 5 workload, zero
# allocations per steady-state step, bitwise-identical traces) and
# emits the measured numbers as BENCH_step.json. The sched-package
# zero-alloc guard re-checks the fully tracked step loop directly.
echo "== hot-path bench gate (no race) =="
HCAPP_BENCH_JSON="$PWD/BENCH_step.json" go test -run TestAdaptiveSpeedupGate -count=1 .
go test -run TestStepSteadyStateZeroAllocs -count=1 ./internal/sched
echo "bench artifact:"
cat BENCH_step.json

# Parallel determinism: the suite sharded across 4 workers must emit
# byte-identical output to a sequential run of the same binary. The
# energy experiment rides along so the attribution ledger is held to the
# same any-width guarantee.
echo "== parallel determinism diff =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/hcappsim" ./cmd/hcappsim
"$tmp/hcappsim" -experiment fig4,fig5,fig10,energy -dur 1 -workers 1 >"$tmp/seq.out"
"$tmp/hcappsim" -experiment fig4,fig5,fig10,energy -dur 1 -workers 4 >"$tmp/par.out"
diff -u "$tmp/seq.out" "$tmp/par.out"
echo "parallel output identical"

# Adaptive determinism: striding through steady-state regions is an
# execution detail, never a model change — the ENTIRE experiment
# registry (plus the seed sweep, which "all" excludes for cost) must
# emit byte-identical output with -adaptive on. The registry runs at a
# 2 ms horizon because the "checks" shape suite needs burst statistics
# a 1 ms run cannot provide.
echo "== adaptive determinism diff (full registry + seeds) =="
"$tmp/hcappsim" -experiment all -dur 2 -workers 1 >"$tmp/all-fixed.out"
"$tmp/hcappsim" -experiment all -dur 2 -workers 1 -adaptive >"$tmp/all-adaptive.out"
diff -u "$tmp/all-fixed.out" "$tmp/all-adaptive.out"
"$tmp/hcappsim" -experiment seeds -dur 1 -workers 1 >"$tmp/seeds-fixed.out"
"$tmp/hcappsim" -experiment seeds -dur 1 -workers 1 -adaptive >"$tmp/seeds-adaptive.out"
diff -u "$tmp/seeds-fixed.out" "$tmp/seeds-adaptive.out"
echo "adaptive output identical across every experiment id"

# Fleet determinism: the same suite executed on a coordinator with two
# workers must diff clean against the sequential standalone output, with
# mixed-priority clients hammering the fleet concurrently.
echo "== cluster determinism diff (coordinator + 2 workers) =="
go build -o "$tmp/hcapp-serve" ./cmd/hcapp-serve
"$tmp/hcapp-serve" -role coordinator -addr 127.0.0.1:18080 &
coord_pid=$!
"$tmp/hcapp-serve" -role worker -addr 127.0.0.1:18081 -coordinator http://127.0.0.1:18080 &
w1_pid=$!
"$tmp/hcapp-serve" -role worker -addr 127.0.0.1:18082 -coordinator http://127.0.0.1:18080 &
w2_pid=$!
trap 'kill $coord_pid $w1_pid $w2_pid 2>/dev/null; rm -rf "$tmp"' EXIT

# Two concurrent clients in different priority classes; each must match
# the standalone output byte for byte. The clients' own readiness retry
# (10 s patience on /readyz) absorbs fleet boot time.
"$tmp/hcappsim" -experiment fig4,fig5,energy -dur 1 -workers 2 \
	-coordinator http://127.0.0.1:18080 -priority interactive -tenant ci-a >"$tmp/fleet-a.out" &
client_a=$!
"$tmp/hcappsim" -experiment fig10 -dur 1 -workers 2 \
	-coordinator http://127.0.0.1:18080 -priority batch -tenant ci-b >"$tmp/fleet-b.out" &
client_b=$!
wait $client_a
wait $client_b
"$tmp/hcappsim" -experiment fig4,fig5,energy -dur 1 -workers 1 >"$tmp/solo-a.out"
"$tmp/hcappsim" -experiment fig10 -dur 1 -workers 1 >"$tmp/solo-b.out"
diff -u "$tmp/solo-a.out" "$tmp/fleet-a.out"
diff -u "$tmp/solo-b.out" "$tmp/fleet-b.out"
kill $coord_pid $w1_pid $w2_pid 2>/dev/null
wait $coord_pid $w1_pid $w2_pid 2>/dev/null || true
trap 'rm -rf "$tmp"' EXIT
echo "fleet output identical to standalone"

# Chaos soak: the same fleet, but every node injects deterministic
# transport faults (latency, drops, truncation, 5xx bursts, partitions,
# restart windows) from a fixed seed. Backoff, circuit breakers,
# hedging, and re-sharding must absorb all of it: the client's output
# still diffs clean against the sequential standalone run, and the
# coordinator's /metrics must show the machinery actually engaged.
echo "== chaos soak (coordinator + 3 workers, seeded faults) =="
"$tmp/hcapp-serve" -role coordinator -addr 127.0.0.1:18090 \
	-chaos-seed 1337 -chaos-profile soak -hedge-after 10ms &
coord_pid=$!
for i in 1 2 3; do
	"$tmp/hcapp-serve" -role worker -addr 127.0.0.1:1809$i \
		-coordinator http://127.0.0.1:18090 -worker-id soak-w$i \
		-chaos-seed 1337 -chaos-profile soak &
	eval "w${i}_pid=\$!"
done
trap 'kill $coord_pid $w1_pid $w2_pid $w3_pid 2>/dev/null; rm -rf "$tmp"' EXIT

"$tmp/hcappsim" -experiment fig4,fig5,fig10,energy -dur 1 -workers 4 \
	-coordinator http://127.0.0.1:18090 -tenant chaos-soak >"$tmp/chaos.out"
diff -u "$tmp/seq.out" "$tmp/chaos.out"
echo "chaos-soaked fleet output identical to standalone"

metrics="$(curl -s http://127.0.0.1:18090/metrics)"
echo "$metrics" | grep -q "^hcapp_chaos_faults_injected_total" || {
	echo "chaos soak: no faults injected — chaos was not actually on"
	exit 1
}
# The robustness machinery must have actually engaged, not just survived:
# the soak profile's 5xx bursts are long enough to trip breakers, and
# -hedge-after 10ms is below ordinary slice latency, so hedges fire.
for want in hcapp_cluster_breaker_trips_total hcapp_cluster_hedged_slices_total; do
	echo "$metrics" | awk -v m="$want" '$1 == m && $2 > 0 {found=1} END {exit !found}' || {
		echo "chaos soak: $want is zero or missing from coordinator /metrics"
		exit 1
	}
done
echo "chaos faults injected, breakers tripped, slices hedged (coordinator /metrics)"

kill $coord_pid $w1_pid $w2_pid $w3_pid 2>/dev/null
wait $coord_pid $w1_pid $w2_pid $w3_pid 2>/dev/null || true
trap 'rm -rf "$tmp"' EXIT

# Trace integrity: a fleet-executed job must assemble one parented span
# tree on the coordinator — worker engine spans shipped back over the
# wire, zero orphans — and the tree's canonical structure must be
# byte-identical across distinct jobs, and between fleet and standalone
# execution. The standalone node also proves -pprof mounts the profiling
# endpoints and that runtime gauges land in the scrape.
echo "== trace integrity (coordinator + 2 workers vs standalone) =="
"$tmp/hcapp-serve" -role coordinator -addr 127.0.0.1:18100 &
coord_pid=$!
"$tmp/hcapp-serve" -role worker -addr 127.0.0.1:18101 \
	-coordinator http://127.0.0.1:18100 -worker-id trace-w1 &
w1_pid=$!
"$tmp/hcapp-serve" -role worker -addr 127.0.0.1:18102 \
	-coordinator http://127.0.0.1:18100 -worker-id trace-w2 &
w2_pid=$!
"$tmp/hcapp-serve" -addr 127.0.0.1:18103 -pprof &
solo_pid=$!
trap 'kill $coord_pid $w1_pid $w2_pid $solo_pid 2>/dev/null; rm -rf "$tmp"' EXIT

wait_ready() {
	i=0
	while ! curl -fsS "$1/readyz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ $i -gt 100 ]; then
			echo "trace integrity: $1 never became ready"
			exit 1
		fi
		sleep 0.1
	done
}
wait_ready http://127.0.0.1:18100
wait_ready http://127.0.0.1:18103

# Submits one job, waits for it, and prints its span-tree structure.
run_traced_job() {
	id="$(curl -fsS -X POST "$1/v1/jobs" \
		-d "{\"combo\":\"Mid-Mid\",\"scheme\":\"hcapp\",\"dur_ms\":0.5,\"seed\":$2,\"tenant\":\"trace-ci\"}" |
		sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' | head -n 1)"
	if [ -z "$id" ]; then
		echo "trace integrity: job submission to $1 returned no id" >&2
		exit 1
	fi
	i=0
	while :; do
		state="$(curl -fsS "$1/v1/jobs/$id" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -n 1)"
		[ "$state" = "done" ] && break
		if [ "$state" = "failed" ]; then
			echo "trace integrity: job $id failed" >&2
			exit 1
		fi
		i=$((i + 1))
		if [ $i -gt 300 ]; then
			echo "trace integrity: job $id stuck in state '$state'" >&2
			exit 1
		fi
		sleep 0.1
	done
	curl -fsS "$1/v1/traces?job=$id&view=structure"
}

run_traced_job http://127.0.0.1:18100 101 >"$tmp/trace-fleet-a.txt"
run_traced_job http://127.0.0.1:18100 202 >"$tmp/trace-fleet-b.txt"
run_traced_job http://127.0.0.1:18103 101 >"$tmp/trace-solo.txt"

if [ "$(head -n 1 "$tmp/trace-fleet-a.txt")" != "job" ]; then
	echo "trace integrity: fleet trace does not root at a job span"
	cat "$tmp/trace-fleet-a.txt"
	exit 1
fi
if ! grep -q "engine" "$tmp/trace-fleet-a.txt"; then
	echo "trace integrity: no engine spans shipped back from workers"
	cat "$tmp/trace-fleet-a.txt"
	exit 1
fi
if grep -q "orphan" "$tmp/trace-fleet-a.txt"; then
	echo "trace integrity: orphan spans in the fleet trace"
	cat "$tmp/trace-fleet-a.txt"
	exit 1
fi
diff -u "$tmp/trace-fleet-a.txt" "$tmp/trace-fleet-b.txt"
diff -u "$tmp/trace-fleet-a.txt" "$tmp/trace-solo.txt"
echo "span-tree structure identical across jobs and across fleet/standalone"

scrape="$(curl -fsS http://127.0.0.1:18100/metrics)"
for want in hcapp_stage_duration_seconds hcapp_queue_wait_seconds hcapp_go_goroutines; do
	echo "$scrape" | grep -q "^$want" || {
		echo "trace integrity: $want missing from coordinator /metrics"
		exit 1
	}
done
curl -fsS -o /dev/null http://127.0.0.1:18103/debug/pprof/cmdline || {
	echo "trace integrity: -pprof did not mount /debug/pprof"
	exit 1
}
echo "stage and queue-wait histograms scraped, pprof mounted"

kill $coord_pid $w1_pid $w2_pid $solo_pid 2>/dev/null
wait $coord_pid $w1_pid $w2_pid $solo_pid 2>/dev/null || true
trap 'rm -rf "$tmp"' EXIT

echo "== fuzz (short) =="
go test -run NoSuchTest -fuzz FuzzParseText -fuzztime 5s ./internal/telemetry
go test -run NoSuchTest -fuzz FuzzClusterProtocol -fuzztime 5s ./internal/cluster

echo "ci: all green"
