#!/bin/sh
# Tier-1 gate, mirroring `make ci` for environments without make:
# formatting, vet, build, and the race-enabled test suite.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "ci: all green"
