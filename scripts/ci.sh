#!/bin/sh
# Tier-1 gate, mirroring `make ci` for environments without make:
# formatting, vet, build, and the race-enabled test suite.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# The step-overhead contracts compare inlined hot paths; race
# instrumentation disables that inlining, so they skip under -race and
# run here without it.
echo "== timing guards (no race) =="
go test -run TestInstrumentedStepOverhead -count=1 .
go test -run TestFaultInjectionStepOverhead -count=1 ./internal/sched

echo "== fuzz (short) =="
go test -run NoSuchTest -fuzz FuzzParseText -fuzztime 5s ./internal/telemetry

echo "ci: all green"
