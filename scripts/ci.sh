#!/bin/sh
# Tier-1 gate, mirroring `make ci` for environments without make:
# formatting, vet, build, and the race-enabled test suite.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# The step-overhead contracts compare inlined hot paths; race
# instrumentation disables that inlining, so they skip under -race and
# run here without it. The parallel-speedup contract needs undistorted
# wall clocks too (it self-skips on hosts with fewer than 4 CPUs).
echo "== timing guards (no race) =="
go test -run TestInstrumentedStepOverhead -count=1 .
go test -run TestFaultInjectionStepOverhead -count=1 ./internal/sched
go test -run TestRunnerParallelSpeedup -count=1 ./internal/experiment

# Parallel determinism: the suite sharded across 4 workers must emit
# byte-identical output to a sequential run of the same binary.
echo "== parallel determinism diff =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/hcappsim" ./cmd/hcappsim
"$tmp/hcappsim" -experiment fig4,fig5,fig10 -dur 1 -workers 1 >"$tmp/seq.out"
"$tmp/hcappsim" -experiment fig4,fig5,fig10 -dur 1 -workers 4 >"$tmp/par.out"
diff -u "$tmp/seq.out" "$tmp/par.out"
echo "parallel output identical"

echo "== fuzz (short) =="
go test -run NoSuchTest -fuzz FuzzParseText -fuzztime 5s ./internal/telemetry

echo "ci: all green"
